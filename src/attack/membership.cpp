#include "attack/membership.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pdsl::attack {

namespace {

std::vector<double> losses_of(nn::Model& ws, const data::Dataset& ds, std::size_t max_samples) {
  const std::size_t n = max_samples == 0 ? ds.size() : std::min(max_samples, ds.size());
  std::vector<double> out;
  out.reserve(n);
  constexpr std::size_t kBatch = 128;
  for (std::size_t off = 0; off < n; off += kBatch) {
    const std::size_t take = std::min(kBatch, n - off);
    std::vector<std::size_t> idx(take);
    for (std::size_t k = 0; k < take; ++k) idx[k] = off + k;
    const auto losses = ws.per_sample_losses(ds.batch_features(idx), ds.batch_labels(idx));
    out.insert(out.end(), losses.begin(), losses.end());
  }
  return out;
}

}  // namespace

MembershipResult membership_from_losses(const std::vector<double>& member_losses,
                                        const std::vector<double>& nonmember_losses) {
  if (member_losses.empty() || nonmember_losses.empty()) {
    throw std::invalid_argument("membership_from_losses: empty loss samples");
  }
  MembershipResult res;
  res.members = member_losses.size();
  res.nonmembers = nonmember_losses.size();
  res.mean_member_loss =
      std::accumulate(member_losses.begin(), member_losses.end(), 0.0) /
      static_cast<double>(member_losses.size());
  res.mean_nonmember_loss =
      std::accumulate(nonmember_losses.begin(), nonmember_losses.end(), 0.0) /
      static_cast<double>(nonmember_losses.size());

  // AUC by merge over sorted losses (members "positive", lower loss = more
  // member-like): AUC = P(member < nonmember) + 0.5 P(tie).
  std::vector<double> m = member_losses;
  std::vector<double> u = nonmember_losses;
  std::sort(m.begin(), m.end());
  std::sort(u.begin(), u.end());
  double wins = 0.0;
  {
    // For each member loss, count nonmembers strictly greater (+ half ties).
    for (double lm : m) {
      const auto lower = std::lower_bound(u.begin(), u.end(), lm);
      const auto upper = std::upper_bound(u.begin(), u.end(), lm);
      const double greater = static_cast<double>(u.end() - upper);
      const double ties = static_cast<double>(upper - lower);
      wins += greater + 0.5 * ties;
    }
  }
  res.auc = wins / (static_cast<double>(m.size()) * static_cast<double>(u.size()));

  // Best-threshold advantage = Kolmogorov-Smirnov distance between the two
  // empirical loss CDFs.
  double advantage = 0.0;
  std::size_t im = 0, iu = 0;
  while (im < m.size() || iu < u.size()) {
    const double t = (iu >= u.size() || (im < m.size() && m[im] <= u[iu])) ? m[im] : u[iu];
    while (im < m.size() && m[im] <= t) ++im;
    while (iu < u.size() && u[iu] <= t) ++iu;
    const double tpr = static_cast<double>(im) / static_cast<double>(m.size());
    const double fpr = static_cast<double>(iu) / static_cast<double>(u.size());
    advantage = std::max(advantage, tpr - fpr);
  }
  res.advantage = advantage;
  return res;
}

MembershipResult membership_inference(nn::Model& workspace, const std::vector<float>& params,
                                      const data::Dataset& members,
                                      const data::Dataset& nonmembers,
                                      std::size_t max_samples) {
  workspace.set_flat_params(params);
  const auto member_losses = losses_of(workspace, members, max_samples);
  const auto nonmember_losses = losses_of(workspace, nonmembers, max_samples);
  return membership_from_losses(member_losses, nonmember_losses);
}

}  // namespace pdsl::attack
