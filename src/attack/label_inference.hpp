#pragma once
// Label-leakage attack against shared (cross-)gradients — the concrete risk
// the paper cites ([15]-[17]) to motivate perturbing cross-gradients. For a
// softmax-cross-entropy head, the bias gradient of the final layer is
//   dL/db_c = mean_batch (p_c - 1{y = c}),
// which is negative for classes present in the batch and positive otherwise.
// An honest-but-curious neighbor receiving an unperturbed cross-gradient can
// therefore read off the sender's batch label distribution. The experiment
// here quantifies the attack's hit rate as a function of the DP noise sigma,
// demonstrating the protection Theorem 1 buys.

#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "nn/model.hpp"

namespace pdsl::attack {

/// Presence scores per class from a flat gradient (final Linear bias is the
/// trailing `classes` entries; more *negative* bias gradient = more present).
/// Returned as positive "presence" scores (negated bias gradient).
std::vector<double> label_scores_from_gradient(const std::vector<float>& flat_grad,
                                               std::size_t classes);

/// The attacker's single best guess for the batch's dominant label.
std::size_t infer_dominant_label(const std::vector<float>& flat_grad, std::size_t classes);

struct LabelLeakageResult {
  double hit_rate = 0.0;     ///< fraction of trials where the guess matched
  double chance = 0.0;       ///< 1 / classes
  std::size_t trials = 0;
  double sigma = 0.0;
};

/// Run `trials` independent single-class batches through `model`, privatize
/// each gradient with (clip, sigma), and measure how often the attacker
/// recovers the batch's label. sigma = 0 reproduces the unprotected leak.
LabelLeakageResult label_leakage_experiment(const nn::Model& model, const data::Dataset& ds,
                                            std::size_t batch, double clip, double sigma,
                                            std::size_t trials, Rng rng);

}  // namespace pdsl::attack
