#pragma once
// Loss-threshold membership inference (Shokri et al. [15], simplified
// Yeom-style attack): members of the training set tend to have lower loss
// under the trained model than non-members. We report the attack AUC
// (Mann-Whitney over per-sample losses) and the best threshold advantage
// (max TPR - FPR); both equal 0.5 / 0.0 for a model that leaks nothing.

#include <vector>

#include "data/dataset.hpp"
#include "nn/model.hpp"

namespace pdsl::attack {

struct MembershipResult {
  double auc = 0.5;        ///< P(member loss < non-member loss), ties at 1/2
  double advantage = 0.0;  ///< max_threshold (TPR - FPR), in [0, 1]
  double mean_member_loss = 0.0;
  double mean_nonmember_loss = 0.0;
  std::size_t members = 0;
  std::size_t nonmembers = 0;
};

/// Evaluate membership inference against `params` loaded into `workspace`.
/// `members` must be drawn from the data the model trained on, `nonmembers`
/// from held-out data of the same distribution.
MembershipResult membership_inference(nn::Model& workspace, const std::vector<float>& params,
                                      const data::Dataset& members,
                                      const data::Dataset& nonmembers,
                                      std::size_t max_samples = 0);

/// AUC + advantage from raw loss samples (exposed for tests).
MembershipResult membership_from_losses(const std::vector<double>& member_losses,
                                        const std::vector<double>& nonmember_losses);

}  // namespace pdsl::attack
