#include "attack/label_inference.hpp"

#include <algorithm>
#include <stdexcept>

#include "dp/mechanism.hpp"

namespace pdsl::attack {

std::vector<double> label_scores_from_gradient(const std::vector<float>& flat_grad,
                                               std::size_t classes) {
  if (classes == 0 || flat_grad.size() < classes) {
    throw std::invalid_argument("label_scores_from_gradient: gradient too small");
  }
  std::vector<double> scores(classes);
  const std::size_t off = flat_grad.size() - classes;
  for (std::size_t c = 0; c < classes; ++c) {
    scores[c] = -static_cast<double>(flat_grad[off + c]);
  }
  return scores;
}

std::size_t infer_dominant_label(const std::vector<float>& flat_grad, std::size_t classes) {
  const auto scores = label_scores_from_gradient(flat_grad, classes);
  return static_cast<std::size_t>(std::max_element(scores.begin(), scores.end()) -
                                  scores.begin());
}

LabelLeakageResult label_leakage_experiment(const nn::Model& model, const data::Dataset& ds,
                                            std::size_t batch, double clip, double sigma,
                                            std::size_t trials, Rng rng) {
  if (trials == 0) throw std::invalid_argument("label_leakage_experiment: zero trials");
  const std::size_t classes = ds.num_classes();

  // Index samples by class so each trial can draw a single-class batch (the
  // worst case for the victim: the batch's label *is* the secret).
  std::vector<std::vector<std::size_t>> by_class(classes);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    by_class[static_cast<std::size_t>(ds.label(i))].push_back(i);
  }

  nn::Model victim = model;  // workspace
  std::size_t hits = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::size_t secret;
    do {
      secret = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
    } while (by_class[secret].empty());
    std::vector<std::size_t> idx(batch);
    for (auto& v : idx) {
      const auto& pool = by_class[secret];
      v = pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    }
    victim.loss_and_backward(ds.batch_features(idx), ds.batch_labels(idx));
    const auto released = dp::privatize(victim.flat_grad(), clip, sigma, rng);
    if (infer_dominant_label(released, classes) == secret) ++hits;
  }

  LabelLeakageResult res;
  res.hit_rate = static_cast<double>(hits) / static_cast<double>(trials);
  res.chance = 1.0 / static_cast<double>(classes);
  res.trials = trials;
  res.sigma = sigma;
  return res;
}

}  // namespace pdsl::attack
