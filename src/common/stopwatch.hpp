#pragma once
// Monotonic stopwatch for coarse timing of experiment phases.

#include <chrono>

namespace pdsl {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pdsl
