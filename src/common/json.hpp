#pragma once
// Minimal JSON parser/writer (no external dependencies). Used for
// machine-readable experiment configs and results in pdsl_cli. Supports the
// full JSON value model (null, bool, number, string, array, object) with
// standard string escapes; numbers are held as double.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pdsl::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double n) : type_(Type::kNumber), num_(n) {}  // NOLINT
  Value(int n) : type_(Type::kNumber), num_(n) {}  // NOLINT
  Value(std::int64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}  // NOLINT
  Value(std::size_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::logic_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field access; throws std::out_of_range when absent.
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Lookup with default.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key, std::string fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

  /// Serialize; `indent` > 0 pretty-prints.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parse a JSON document; throws std::runtime_error with position info on
/// malformed input. Trailing non-whitespace is an error.
Value parse(const std::string& text);

/// Parse the contents of a file.
Value parse_file(const std::string& path);

/// Escape a string for embedding in JSON (without quotes).
std::string escape(const std::string& s);

}  // namespace pdsl::json
