#pragma once
// Tiny command-line flag parser shared by bench/example binaries.
// Supports "--name value" and "--name=value"; unknown flags are an error so
// typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pdsl {

class CliArgs {
 public:
  /// Parse argv. `allowed` lists every accepted flag name (without "--").
  CliArgs(int argc, const char* const* argv, const std::vector<std::string>& allowed);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of doubles, e.g. "--eps 0.08,0.1,0.3".
  [[nodiscard]] std::vector<double> get_double_list(const std::string& name,
                                                    std::vector<double> fallback) const;
  /// Comma-separated list of ints, e.g. "--agents 10,15,20".
  [[nodiscard]] std::vector<std::int64_t> get_int_list(const std::string& name,
                                                       std::vector<std::int64_t> fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pdsl
