#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace pdsl {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng Rng::split(std::uint64_t salt) const {
  return Rng(splitmix64(seed_ ^ splitmix64(salt)));
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("categorical: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("categorical: non-positive total weight");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;  // numerical fallthrough
}

double Rng::gamma(double shape) {
  std::gamma_distribution<double> dist(shape, 1.0);
  return dist(engine_);
}

std::vector<double> Rng::dirichlet(const std::vector<double>& alpha) {
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    out[i] = gamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    // All-gamma draws underflowed (tiny alpha); fall back to a one-hot draw,
    // which is the correct limit of Dirichlet as alpha -> 0.
    const auto hot = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(alpha.size()) - 1));
    std::fill(out.begin(), out.end(), 0.0);
    out[hot] = 1.0;
    return out;
  }
  for (auto& v : out) v /= total;
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  shuffle(idx);
  return idx;
}

std::string Rng::serialize() const {
  std::ostringstream out;
  out << seed_ << ' ' << engine_;
  if (!out) throw std::runtime_error("Rng::serialize: stream failure");
  return out.str();
}

Rng Rng::deserialize(const std::string& state) {
  std::istringstream in(state);
  std::uint64_t seed = 0;
  in >> seed;
  Rng rng(seed);
  in >> rng.engine_;
  if (!in) throw std::runtime_error("Rng::deserialize: malformed state blob");
  return rng;
}

void Rng::fill_normal(std::vector<float>& buf, double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  for (auto& v : buf) v = static_cast<float>(dist(engine_));
}

}  // namespace pdsl
