#include "common/csv.hpp"

#include <stdexcept>

namespace pdsl {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : out_(path), path_(path), columns_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (columns.empty()) throw std::invalid_argument("CsvWriter: no columns");
  std::string header;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) header += ',';
    header += columns[i];
  }
  out_ << header << '\n';
}

void CsvWriter::write_line(const std::string& line) {
  out_ << line << '\n';
  ++rows_;
}

void CsvWriter::flush() { out_.flush(); }

void CsvWriter::throw_arity(std::size_t got) const {
  throw std::invalid_argument("CsvWriter: row with " + std::to_string(got) +
                              " cells, expected " + std::to_string(columns_));
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  cells.push_back(cur);
  return cells;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(split_csv_line(line));
  }
  return rows;
}

}  // namespace pdsl
