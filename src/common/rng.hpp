#pragma once
// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library (data synthesis, mini-batch
// sampling, DP noise, Shapley permutations) draws from an explicitly seeded
// Rng so that a whole experiment is a pure function of its seed. Independent
// streams for sub-components are derived with split(), which uses SplitMix64
// so that derived streams are statistically independent of the parent.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace pdsl {

/// Wrapper around std::mt19937_64 with convenience samplers and stream
/// splitting. Copyable; copies advance independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed), seed_(seed) {}

  /// Derive an independent child stream. Deterministic in (seed, salt).
  [[nodiscard]] Rng split(std::uint64_t salt) const;

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (mean 0, stddev 1) unless overridden.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Sample an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// Sample from Gamma(shape, 1). Used to build Dirichlet draws.
  double gamma(double shape);

  /// Sample a probability vector from Dirichlet(alpha).
  std::vector<double> dirichlet(const std::vector<double>& alpha);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Fill a buffer with i.i.d. N(mean, stddev^2) samples.
  void fill_normal(std::vector<float>& buf, double mean, double stddev);

  std::mt19937_64& engine() { return engine_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Textual engine state + seed, for bit-exact checkpoint/resume (S-RECOV).
  /// mt19937_64's operator<< emits its full 312-word state, so a restored
  /// stream continues exactly where the saved one stopped.
  [[nodiscard]] std::string serialize() const;
  /// Rebuild a stream captured by serialize(); throws std::runtime_error on
  /// a malformed blob.
  static Rng deserialize(const std::string& state);

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// SplitMix64 mixing step; also useful as a cheap deterministic hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

}  // namespace pdsl
