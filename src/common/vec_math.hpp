#pragma once
// Flat-vector math used by the decentralized algorithms. Model parameters
// circulate between agents as flat std::vector<float>; these helpers keep the
// algorithm code close to the paper's equations.

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace pdsl {

inline void check_same_size(const std::vector<float>& a, const std::vector<float>& b,
                            const char* what) {
  if (a.size() != b.size()) throw std::invalid_argument(std::string(what) + ": size mismatch");
}

/// dst += scale * src
inline void axpy(std::vector<float>& dst, const std::vector<float>& src, float scale) {
  check_same_size(dst, src, "axpy");
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += scale * src[i];
}

/// dst *= scale
inline void scale_inplace(std::vector<float>& dst, float scale) {
  for (auto& v : dst) v *= scale;
}

inline double dot(const std::vector<float>& a, const std::vector<float>& b) {
  check_same_size(a, b, "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

inline double l2_norm(const std::vector<float>& a) { return std::sqrt(dot(a, a)); }

inline double l2_distance(const std::vector<float>& a, const std::vector<float>& b) {
  check_same_size(a, b, "l2_distance");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

/// Weighted sum of vectors: out = sum_k weights[k] * vs[k].
inline std::vector<float> weighted_sum(const std::vector<const std::vector<float>*>& vs,
                                       const std::vector<double>& weights) {
  if (vs.empty() || vs.size() != weights.size()) {
    throw std::invalid_argument("weighted_sum: arity mismatch");
  }
  std::vector<float> out(vs[0]->size(), 0.0f);
  for (std::size_t k = 0; k < vs.size(); ++k) {
    check_same_size(out, *vs[k], "weighted_sum");
    const auto w = static_cast<float>(weights[k]);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += w * (*vs[k])[i];
  }
  return out;
}

/// Arithmetic mean of vectors.
inline std::vector<float> mean_of(const std::vector<const std::vector<float>*>& vs) {
  std::vector<double> w(vs.size(), vs.empty() ? 0.0 : 1.0 / static_cast<double>(vs.size()));
  return weighted_sum(vs, w);
}

}  // namespace pdsl
