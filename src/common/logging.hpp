#pragma once
// Minimal leveled logger. Deliberately tiny: experiments write structured
// results via csv.hpp; the logger is for human-readable progress only.

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace pdsl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::log_line(level, oss.str());
}

template <typename... Args>
void log_debug(Args&&... args) { log(LogLevel::kDebug, std::forward<Args>(args)...); }
template <typename... Args>
void log_info(Args&&... args) { log(LogLevel::kInfo, std::forward<Args>(args)...); }
template <typename... Args>
void log_warn(Args&&... args) { log(LogLevel::kWarn, std::forward<Args>(args)...); }
template <typename... Args>
void log_error(Args&&... args) { log(LogLevel::kError, std::forward<Args>(args)...); }

}  // namespace pdsl
