#pragma once
// Minimal leveled logger. Deliberately tiny: experiments write structured
// results via csv.hpp; the logger is for human-readable progress only.

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace pdsl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

/// Monotonic seconds since the logger's first use; every log line carries it
/// so interleaved output from long sweeps stays ordered and attributable.
double log_uptime_seconds();

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::log_line(level, oss.str());
}

template <typename... Args>
void log_debug(Args&&... args) { log(LogLevel::kDebug, std::forward<Args>(args)...); }
template <typename... Args>
void log_info(Args&&... args) { log(LogLevel::kInfo, std::forward<Args>(args)...); }
template <typename... Args>
void log_warn(Args&&... args) { log(LogLevel::kWarn, std::forward<Args>(args)...); }
template <typename... Args>
void log_error(Args&&... args) { log(LogLevel::kError, std::forward<Args>(args)...); }

/// One debug line for a completed timed region: `span name done (12.3 ms)`.
/// Complements obs::ScopedSpan — this is for eyeballing logs, not trace files.
void log_span(const std::string& name, double seconds);

/// RAII variant: logs `span <name> done (N ms)` at debug level on destruction.
class ScopedLogSpan {
 public:
  explicit ScopedLogSpan(std::string name);
  ~ScopedLogSpan();
  ScopedLogSpan(const ScopedLogSpan&) = delete;
  ScopedLogSpan& operator=(const ScopedLogSpan&) = delete;

 private:
  std::string name_;
  double start_s_;
};

}  // namespace pdsl
