#pragma once
// CSV emission for experiment results. Every bench writes its series/rows
// both to stdout (human-readable) and to a CSV file so figures can be
// regenerated with any plotting tool.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace pdsl {

/// Append-only CSV writer with a fixed header. Throws std::runtime_error if
/// the file cannot be opened or a row has the wrong arity.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Write one row; each cell is formatted with operator<<.
  template <typename... Cells>
  void row(Cells&&... cells) {
    if (sizeof...(cells) != columns_) {
      throw_arity(sizeof...(cells));
    }
    std::ostringstream oss;
    bool first = true;
    ((oss << (first ? "" : ",") << cells, first = false), ...);
    write_line(oss.str());
  }

  void flush();
  [[nodiscard]] std::size_t rows_written() const { return rows_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void write_line(const std::string& line);
  [[noreturn]] void throw_arity(std::size_t got) const;

  std::ofstream out_;
  std::string path_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

/// Parse a CSV line into cells (no quoting support; our writers never quote).
std::vector<std::string> split_csv_line(const std::string& line);

/// Read an entire CSV file (including header) produced by CsvWriter.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

}  // namespace pdsl
