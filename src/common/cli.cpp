#include "common/cli.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pdsl {

namespace {
bool is_allowed(const std::vector<std::string>& allowed, const std::string& name) {
  return std::find(allowed.begin(), allowed.end(), name) != allowed.end();
}
}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv, const std::vector<std::string>& allowed) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("CliArgs: expected --flag, got '" + arg + "'");
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare flag
      }
    }
    if (!is_allowed(allowed, name)) {
      throw std::invalid_argument("CliArgs: unknown flag --" + name);
    }
    values_[name] = value;
  }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<double> CliArgs::get_double_list(const std::string& name,
                                             std::vector<double> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(std::stod(cell));
  return out;
}

std::vector<std::int64_t> CliArgs::get_int_list(const std::string& name,
                                                std::vector<std::int64_t> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(std::stoll(cell));
  return out;
}

}  // namespace pdsl
