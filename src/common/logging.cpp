#include "common/logging.hpp"

#include <atomic>

namespace pdsl {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  os << "[" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace pdsl
