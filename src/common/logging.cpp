#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace pdsl {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

std::chrono::steady_clock::time_point log_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

double log_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - log_epoch()).count();
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  // Stable format: `[SSSS.mmm] [LEVEL] message` — monotonic seconds since the
  // logger's first line, then the level tag. Scripts may rely on this shape.
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%9.3f", log_uptime_seconds());
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  os << "[" << stamp << "] [" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

void log_span(const std::string& name, double seconds) {
  log_debug("span ", name, " done (", seconds * 1e3, " ms)");
}

ScopedLogSpan::ScopedLogSpan(std::string name)
    : name_(std::move(name)), start_s_(log_uptime_seconds()) {}

ScopedLogSpan::~ScopedLogSpan() { log_span(name_, log_uptime_seconds() - start_s_); }

}  // namespace pdsl
