#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pdsl::json {

namespace {
[[noreturn]] void type_error(const char* want, Type got) {
  throw std::logic_error(std::string("json: expected ") + want + ", value has type " +
                         std::to_string(static_cast<int>(got)));
}
}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

std::int64_t Value::as_int() const {
  const double n = as_number();
  if (std::abs(n - std::round(n)) > 1e-9) {
    throw std::logic_error("json: number is not an integer");
  }
  return static_cast<std::int64_t>(std::llround(n));
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

Array& Value::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

Object& Value::as_object() {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

const Value& Value::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::out_of_range("json: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && obj_.count(key) > 0;
}

double Value::number_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::string Value::string_or(const std::string& key, std::string fallback) const {
  return contains(key) ? at(key).as_string() : std::move(fallback);
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                       static_cast<std::size_t>(depth + 1),
                                                   ' ')
                                     : "";
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ')
                 : "";
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: {
      if (std::isfinite(num_) && num_ == std::round(num_) && std::abs(num_) < 1e15) {
        out += std::to_string(static_cast<long long>(num_));
      } else {
        std::ostringstream oss;
        oss.precision(17);
        oss << num_;
        out += oss.str();
      }
      break;
    }
    case Type::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        out += nl;
        out += pad;
        v.dump_to(out, indent, depth + 1);
        first = false;
      }
      if (!arr_.empty()) {
        out += nl;
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        out += nl;
        out += pad;
        out += '"';
        out += escape(k);
        out += indent > 0 ? "\": " : "\":";
        v.dump_to(out, indent, depth + 1);
        first = false;
      }
      if (!obj_.empty()) {
        out += nl;
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value(nullptr);
    }
    return parse_number();
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      std::size_t used = 0;
      const double v = std::stod(text_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) fail("malformed number");
      return Value(v);
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace pdsl::json
