#pragma once
// Shapley value computation: exact subset enumeration (Eq. 18, feasible for
// small neighborhoods), the paper's Monte Carlo permutation sampler
// (Algorithm 2) for larger ones, truncated and stratified variants, and the
// S-SHAP variance-adaptive sampler (antithetic permutation pairs + a
// confidence-interval early stop).
//
// All estimators take the abstract `Game&` and announce the coalitions they
// are about to evaluate via Game::prefetch() wherever the evaluation set is
// known up front (value-independent sampling). On CachedGame the hint is a
// no-op and the call sequence is unchanged — bit-identical to the historical
// sequential implementations. On BatchedGame the hint is what enables the
// one-GEMM-per-layer batched scoring path.

#include "common/rng.hpp"
#include "shapley/game.hpp"

namespace pdsl::shapley {

/// Exact Shapley values via Eq. 8/18:
///   phi_i = sum_{S subseteq N\{i}} |S|! (n-1-|S|)! / n! * (v(S+i) - v(S)).
/// Requires 2^n coalition evaluations; guarded to n <= 20.
std::vector<double> exact_shapley(Game& game);

/// Algorithm 2: R random permutations; phi_i accumulates the marginal
/// contribution of i to its predecessors in each permutation, divided by R.
/// Permutations are value-independent, so they are drawn up front (same RNG
/// stream as drawing them lazily) and prefetched as one batch.
std::vector<double> monte_carlo_shapley(Game& game, std::size_t num_permutations,
                                        Rng& rng);

/// Auto: exact when 2^n coalition evaluations are cheaper than the Monte
/// Carlo budget would be, Monte Carlo otherwise.
std::vector<double> shapley_auto(Game& game, std::size_t num_permutations, Rng& rng);

/// Truncated Monte Carlo ("TMC-Shapley", Ghorbani & Zou style): scan each
/// permutation but stop appending players once the running coalition's value
/// is within `tolerance` of the grand coalition's — the remaining marginals
/// are credited as zero. Saves characteristic evaluations when v saturates.
/// Truncation is VALUE-dependent, so this estimator cannot announce its
/// coalitions up front and never batches beyond singleton fallbacks.
struct TruncatedMcOptions {
  std::size_t num_permutations = 8;
  double tolerance = 0.01;
};
std::vector<double> truncated_monte_carlo_shapley(Game& game,
                                                  const TruncatedMcOptions& opts, Rng& rng);

/// Stratified sampling estimator (Castro et al. [37]): for every player and
/// every coalition size s, average the marginal contribution over
/// `samples_per_stratum` uniformly drawn coalitions of size s that exclude
/// the player; the Shapley value is the mean across strata. Sampling is
/// value-independent: all coalitions are drawn first (identical RNG stream),
/// prefetched, then folded in the original accumulation order.
std::vector<double> stratified_shapley(Game& game, std::size_t samples_per_stratum,
                                       Rng& rng);

/// S-SHAP variance-adaptive Monte Carlo. Permutations are drawn in
/// antithetic pairs (a permutation and its reversal — their marginal noise is
/// negatively correlated, see DESIGN §12) and each pair's per-player marginal
/// average is one i.i.d. sample. After `min_permutations`, sampling stops as
/// soon as the top-ranked player's confidence interval (mean ± ci_z·s/√k) is
/// disjoint from every other player's — the π ranking only needs the ordering
/// to be separated, not the values to be converged — or when
/// `max_permutations` is exhausted.
struct AdaptiveMcOptions {
  std::size_t min_permutations = 4;   ///< floor before the CI check may stop
  std::size_t max_permutations = 32;  ///< hard sampling budget
  double ci_z = 2.0;                  ///< CI half-width multiplier (z-score)
  bool antithetic = true;             ///< pair each permutation with its reversal
};
struct AdaptiveMcResult {
  std::vector<double> phi;
  std::size_t permutations_used = 0;
  bool early_stopped = false;  ///< stopped by CI separation before the budget
};
AdaptiveMcResult adaptive_monte_carlo_shapley(Game& game, const AdaptiveMcOptions& opts,
                                              Rng& rng);

}  // namespace pdsl::shapley
