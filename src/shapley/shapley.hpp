#pragma once
// Shapley value computation: exact subset enumeration (Eq. 18, feasible for
// small neighborhoods) and the paper's Monte Carlo permutation sampler
// (Algorithm 2) for larger ones.

#include "common/rng.hpp"
#include "shapley/game.hpp"

namespace pdsl::shapley {

/// Exact Shapley values via Eq. 8/18:
///   phi_i = sum_{S subseteq N\{i}} |S|! (n-1-|S|)! / n! * (v(S+i) - v(S)).
/// Requires 2^n coalition evaluations; guarded to n <= 20.
std::vector<double> exact_shapley(CachedGame& game);

/// Algorithm 2: R random permutations; phi_i accumulates the marginal
/// contribution of i to its predecessors in each permutation, divided by R.
std::vector<double> monte_carlo_shapley(CachedGame& game, std::size_t num_permutations,
                                        Rng& rng);

/// Auto: exact when 2^n coalition evaluations are cheaper than the Monte
/// Carlo budget would be, Monte Carlo otherwise.
std::vector<double> shapley_auto(CachedGame& game, std::size_t num_permutations, Rng& rng);

/// Truncated Monte Carlo ("TMC-Shapley", Ghorbani & Zou style): scan each
/// permutation but stop appending players once the running coalition's value
/// is within `tolerance` of the grand coalition's — the remaining marginals
/// are credited as zero. Saves characteristic evaluations when v saturates.
struct TruncatedMcOptions {
  std::size_t num_permutations = 8;
  double tolerance = 0.01;
};
std::vector<double> truncated_monte_carlo_shapley(CachedGame& game,
                                                  const TruncatedMcOptions& opts, Rng& rng);

/// Stratified sampling estimator (Castro et al. [37]): for every player and
/// every coalition size s, average the marginal contribution over
/// `samples_per_stratum` uniformly drawn coalitions of size s that exclude
/// the player; the Shapley value is the mean across strata.
std::vector<double> stratified_shapley(CachedGame& game, std::size_t samples_per_stratum,
                                       Rng& rng);

}  // namespace pdsl::shapley
