#include "shapley/shapley.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdsl::shapley {

namespace {

/// Append the coalition masks a permutation walk will request, in request
/// order: at each position, v(prefix + j) then v(prefix).
void append_walk_masks(const std::vector<std::size_t>& order,
                       std::vector<std::uint64_t>& out) {
  std::uint64_t prefix = 0;
  for (const std::size_t j : order) {
    out.push_back(prefix | (1ULL << j));
    out.push_back(prefix);
    prefix |= (1ULL << j);
  }
}

}  // namespace

std::vector<double> exact_shapley(Game& game) {
  const std::size_t n = game.num_players();
  if (n > 20) {
    throw std::invalid_argument("exact_shapley: too many players; use monte_carlo_shapley");
  }
  // Precompute the permutation weights |S|!(n-1-|S|)!/n! by coalition size.
  std::vector<double> weight(n);
  for (std::size_t s = 0; s < n; ++s) {
    // weight(s) = s! (n-1-s)! / n!  computed iteratively to avoid overflow.
    double w = 1.0 / static_cast<double>(n);
    // w = 1/(n * C(n-1, s))
    for (std::size_t k = 1; k <= s; ++k) {
      w *= static_cast<double>(k) / static_cast<double>(n - k);
    }
    weight[s] = w;
  }

  const std::uint64_t full = game.full_mask();
  {
    // Every non-empty coalition is needed; announce them all at once.
    std::vector<std::uint64_t> masks;
    masks.reserve(static_cast<std::size_t>(full));
    for (std::uint64_t mask = 1; mask <= full; ++mask) masks.push_back(mask);
    game.prefetch(masks);
  }

  std::vector<double> phi(n, 0.0);
  for (std::uint64_t mask = 0; mask <= full; ++mask) {
    const auto size = static_cast<std::size_t>(__builtin_popcountll(mask));
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) continue;  // S must exclude i
      const double marginal = game.value(mask | (1ULL << i)) - game.value(mask);
      phi[i] += weight[size] * marginal;
    }
  }
  return phi;
}

std::vector<double> monte_carlo_shapley(Game& game, std::size_t num_permutations,
                                        Rng& rng) {
  if (num_permutations == 0) {
    throw std::invalid_argument("monte_carlo_shapley: need at least one permutation");
  }
  const std::size_t n = game.num_players();
  // Sampling is value-independent: drawing all permutations up front consumes
  // the RNG stream exactly as the historical draw-as-you-go loop did, and
  // lets the whole evaluation set be announced in one prefetch.
  std::vector<std::vector<std::size_t>> orders;
  orders.reserve(num_permutations);
  for (std::size_t r = 0; r < num_permutations; ++r) orders.push_back(rng.permutation(n));
  {
    std::vector<std::uint64_t> masks;
    masks.reserve(2 * num_permutations * n);
    for (const auto& order : orders) append_walk_masks(order, masks);
    game.prefetch(masks);
  }

  std::vector<double> phi(n, 0.0);
  const double inv_r = 1.0 / static_cast<double>(num_permutations);
  for (const auto& order : orders) {
    std::uint64_t prefix = 0;  // Z_j(phi_r): predecessors of the current player
    for (std::size_t pos = 0; pos < n; ++pos) {
      const std::size_t j = order[pos];
      const double with_j = game.value(prefix | (1ULL << j));
      const double without_j = game.value(prefix);
      phi[j] += (with_j - without_j) * inv_r;  // Eq. 26
      prefix |= (1ULL << j);
    }
  }
  return phi;
}

std::vector<double> truncated_monte_carlo_shapley(Game& game,
                                                  const TruncatedMcOptions& opts, Rng& rng) {
  if (opts.num_permutations == 0) {
    throw std::invalid_argument("truncated_monte_carlo_shapley: need permutations");
  }
  if (opts.tolerance < 0.0) {
    throw std::invalid_argument("truncated_monte_carlo_shapley: negative tolerance");
  }
  const std::size_t n = game.num_players();
  const double full_value = game.value(game.full_mask());
  std::vector<double> phi(n, 0.0);
  const double inv_r = 1.0 / static_cast<double>(opts.num_permutations);
  for (std::size_t r = 0; r < opts.num_permutations; ++r) {
    const auto order = rng.permutation(n);
    std::uint64_t prefix = 0;
    double prev_value = 0.0;
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (std::abs(full_value - prev_value) <= opts.tolerance) {
        break;  // truncate: remaining players get zero marginal this pass
      }
      const std::size_t j = order[pos];
      const double with_j = game.value(prefix | (1ULL << j));
      phi[j] += (with_j - prev_value) * inv_r;
      prev_value = with_j;
      prefix |= (1ULL << j);
    }
  }
  return phi;
}

std::vector<double> stratified_shapley(Game& game, std::size_t samples_per_stratum,
                                       Rng& rng) {
  if (samples_per_stratum == 0) {
    throw std::invalid_argument("stratified_shapley: need at least one sample per stratum");
  }
  const std::size_t n = game.num_players();
  // Pass 1 — draw every stratum sample exactly as the historical loop did
  // (identical RNG consumption), recording the (S+i, S) mask pairs.
  std::vector<std::uint64_t> with_masks, without_masks;
  with_masks.reserve(n * n * samples_per_stratum);
  without_masks.reserve(n * n * samples_per_stratum);
  std::vector<std::size_t> others;
  others.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    others.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(j);
    }
    for (std::size_t s = 0; s < n; ++s) {  // stratum: coalition size s
      for (std::size_t k = 0; k < samples_per_stratum; ++k) {
        rng.shuffle(others);
        std::uint64_t mask = 0;
        for (std::size_t t = 0; t < s; ++t) mask |= (1ULL << others[t]);
        with_masks.push_back(mask | (1ULL << i));
        without_masks.push_back(mask);
      }
    }
  }
  {
    std::vector<std::uint64_t> masks;
    masks.reserve(2 * with_masks.size());
    for (std::size_t t = 0; t < with_masks.size(); ++t) {
      masks.push_back(with_masks[t]);
      masks.push_back(without_masks[t]);
    }
    game.prefetch(masks);
  }

  // Pass 2 — fold the recorded samples in the original accumulation order.
  std::vector<double> phi(n, 0.0);
  std::size_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      double stratum = 0.0;
      for (std::size_t k = 0; k < samples_per_stratum; ++k, ++t) {
        stratum += game.value(with_masks[t]) - game.value(without_masks[t]);
      }
      acc += stratum / static_cast<double>(samples_per_stratum);
    }
    phi[i] = acc / static_cast<double>(n);
  }
  return phi;
}

AdaptiveMcResult adaptive_monte_carlo_shapley(Game& game, const AdaptiveMcOptions& opts,
                                              Rng& rng) {
  if (opts.max_permutations == 0) {
    throw std::invalid_argument("adaptive_monte_carlo_shapley: need a permutation budget");
  }
  if (opts.ci_z < 0.0) {
    throw std::invalid_argument("adaptive_monte_carlo_shapley: negative ci_z");
  }
  const std::size_t n = game.num_players();
  const std::size_t min_perms = std::min(opts.min_permutations, opts.max_permutations);

  // Welford accumulators over per-chunk samples (a chunk is one antithetic
  // pair, or a single permutation when antithetic is off / the budget is odd).
  std::vector<double> mean(n, 0.0), m2(n, 0.0);
  std::size_t chunks = 0;

  AdaptiveMcResult res;
  res.phi.assign(n, 0.0);

  std::vector<double> marginals(n, 0.0);
  const auto walk = [&](const std::vector<std::size_t>& order, double scale) {
    std::uint64_t prefix = 0;
    for (const std::size_t j : order) {
      const double with_j = game.value(prefix | (1ULL << j));
      const double without_j = game.value(prefix);
      marginals[j] += (with_j - without_j) * scale;
      prefix |= (1ULL << j);
    }
  };

  while (res.permutations_used < opts.max_permutations) {
    const auto order = rng.permutation(n);
    const bool pair =
        opts.antithetic && res.permutations_used + 2 <= opts.max_permutations;
    std::vector<std::size_t> reversed;
    if (pair) reversed.assign(order.rbegin(), order.rend());

    {
      std::vector<std::uint64_t> masks;
      masks.reserve(pair ? 4 * n : 2 * n);
      append_walk_masks(order, masks);
      if (pair) append_walk_masks(reversed, masks);
      game.prefetch(masks);
    }

    std::fill(marginals.begin(), marginals.end(), 0.0);
    const double scale = pair ? 0.5 : 1.0;
    walk(order, scale);
    if (pair) walk(reversed, scale);
    res.permutations_used += pair ? 2 : 1;

    ++chunks;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = marginals[i] - mean[i];
      mean[i] += d / static_cast<double>(chunks);
      m2[i] += d * (marginals[i] - mean[i]);
    }

    if (res.permutations_used >= min_perms && chunks >= 2 &&
        res.permutations_used < opts.max_permutations) {
      // Half-width of the CI on each player's mean marginal.
      const auto k = static_cast<double>(chunks);
      std::size_t top = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (mean[i] > mean[top]) top = i;
      }
      const auto hw = [&](std::size_t i) {
        return opts.ci_z * std::sqrt(m2[i] / (k - 1.0) / k);
      };
      bool separated = true;
      for (std::size_t i = 0; i < n && separated; ++i) {
        if (i == top) continue;
        separated = mean[top] - hw(top) > mean[i] + hw(i);
      }
      if (separated) {
        res.early_stopped = true;
        break;
      }
    }
  }

  res.phi = mean;
  return res;
}

std::vector<double> shapley_auto(Game& game, std::size_t num_permutations, Rng& rng) {
  const std::size_t n = game.num_players();
  // Exact costs 2^n - 1 evaluations; Monte Carlo costs at most R*n distinct
  // prefixes (usually fewer after caching). Choose the cheaper.
  const double exact_cost = (n <= 20) ? std::pow(2.0, static_cast<double>(n)) : 1e30;
  const double mc_cost = static_cast<double>(num_permutations) * static_cast<double>(n);
  if (exact_cost <= mc_cost) return exact_shapley(game);
  return monte_carlo_shapley(game, num_permutations, rng);
}

}  // namespace pdsl::shapley
