#include "shapley/shapley.hpp"

#include <cmath>
#include <stdexcept>

namespace pdsl::shapley {

std::vector<double> exact_shapley(CachedGame& game) {
  const std::size_t n = game.num_players();
  if (n > 20) {
    throw std::invalid_argument("exact_shapley: too many players; use monte_carlo_shapley");
  }
  // Precompute the permutation weights |S|!(n-1-|S|)!/n! by coalition size.
  std::vector<double> weight(n);
  for (std::size_t s = 0; s < n; ++s) {
    // weight(s) = s! (n-1-s)! / n!  computed iteratively to avoid overflow.
    double w = 1.0 / static_cast<double>(n);
    // w = 1/(n * C(n-1, s))
    for (std::size_t k = 1; k <= s; ++k) {
      w *= static_cast<double>(k) / static_cast<double>(n - k);
    }
    weight[s] = w;
  }

  std::vector<double> phi(n, 0.0);
  const std::uint64_t full = game.full_mask();
  for (std::uint64_t mask = 0; mask <= full; ++mask) {
    const auto size = static_cast<std::size_t>(__builtin_popcountll(mask));
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) continue;  // S must exclude i
      const double marginal = game.value(mask | (1ULL << i)) - game.value(mask);
      phi[i] += weight[size] * marginal;
    }
  }
  return phi;
}

std::vector<double> monte_carlo_shapley(CachedGame& game, std::size_t num_permutations,
                                        Rng& rng) {
  if (num_permutations == 0) {
    throw std::invalid_argument("monte_carlo_shapley: need at least one permutation");
  }
  const std::size_t n = game.num_players();
  std::vector<double> phi(n, 0.0);
  const double inv_r = 1.0 / static_cast<double>(num_permutations);
  for (std::size_t r = 0; r < num_permutations; ++r) {
    const auto order = rng.permutation(n);
    std::uint64_t prefix = 0;  // Z_j(phi_r): predecessors of the current player
    for (std::size_t pos = 0; pos < n; ++pos) {
      const std::size_t j = order[pos];
      const double with_j = game.value(prefix | (1ULL << j));
      const double without_j = game.value(prefix);
      phi[j] += (with_j - without_j) * inv_r;  // Eq. 26
      prefix |= (1ULL << j);
    }
  }
  return phi;
}

std::vector<double> truncated_monte_carlo_shapley(CachedGame& game,
                                                  const TruncatedMcOptions& opts, Rng& rng) {
  if (opts.num_permutations == 0) {
    throw std::invalid_argument("truncated_monte_carlo_shapley: need permutations");
  }
  if (opts.tolerance < 0.0) {
    throw std::invalid_argument("truncated_monte_carlo_shapley: negative tolerance");
  }
  const std::size_t n = game.num_players();
  const double full_value = game.value(game.full_mask());
  std::vector<double> phi(n, 0.0);
  const double inv_r = 1.0 / static_cast<double>(opts.num_permutations);
  for (std::size_t r = 0; r < opts.num_permutations; ++r) {
    const auto order = rng.permutation(n);
    std::uint64_t prefix = 0;
    double prev_value = 0.0;
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (std::abs(full_value - prev_value) <= opts.tolerance) {
        break;  // truncate: remaining players get zero marginal this pass
      }
      const std::size_t j = order[pos];
      const double with_j = game.value(prefix | (1ULL << j));
      phi[j] += (with_j - prev_value) * inv_r;
      prev_value = with_j;
      prefix |= (1ULL << j);
    }
  }
  return phi;
}

std::vector<double> stratified_shapley(CachedGame& game, std::size_t samples_per_stratum,
                                       Rng& rng) {
  if (samples_per_stratum == 0) {
    throw std::invalid_argument("stratified_shapley: need at least one sample per stratum");
  }
  const std::size_t n = game.num_players();
  std::vector<double> phi(n, 0.0);
  std::vector<std::size_t> others;
  others.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    others.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(j);
    }
    for (std::size_t s = 0; s < n; ++s) {  // stratum: coalition size s
      double stratum = 0.0;
      for (std::size_t k = 0; k < samples_per_stratum; ++k) {
        rng.shuffle(others);
        std::uint64_t mask = 0;
        for (std::size_t t = 0; t < s; ++t) mask |= (1ULL << others[t]);
        stratum += game.value(mask | (1ULL << i)) - game.value(mask);
      }
      acc += stratum / static_cast<double>(samples_per_stratum);
    }
    phi[i] = acc / static_cast<double>(n);
  }
  return phi;
}

std::vector<double> shapley_auto(CachedGame& game, std::size_t num_permutations, Rng& rng) {
  const std::size_t n = game.num_players();
  // Exact costs 2^n - 1 evaluations; Monte Carlo costs at most R*n distinct
  // prefixes (usually fewer after caching). Choose the cheaper.
  const double exact_cost = (n <= 20) ? std::pow(2.0, static_cast<double>(n)) : 1e30;
  const double mc_cost = static_cast<double>(num_permutations) * static_cast<double>(n);
  if (exact_cost <= mc_cost) return exact_shapley(game);
  return monte_carlo_shapley(game, num_permutations, rng);
}

}  // namespace pdsl::shapley
