#pragma once
// Turning Shapley values into aggregation weights: min-max normalization
// (Eq. 19) and the pi weights (Eq. 20) PDSL uses to average perturbed
// gradients (Eq. 21).

#include <cstddef>
#include <vector>

namespace pdsl::shapley {

/// Eq. 19: phî_j = (phi_j - min_k phi_k) / (max_k phi_k - min_k phi_k).
/// Degenerate case (all phi equal, e.g. round 1 with identical models): the
/// paper's formula is 0/0; we return all-ones, which makes Eq. 20 fall back
/// to plain W-weighted averaging — the natural "no contribution signal" prior.
std::vector<double> minmax_normalize(const std::vector<double>& phi);

/// Eq. 20: pi_j = phî_j / (w_row[j] * sum_k phî_k), where w_row[j] = omega_{i,j}
/// for each j in the closed neighborhood (same indexing as phi_hat).
/// If sum_k phî_k == 0 (cannot happen after minmax_normalize's fallback, but
/// guarded for direct callers) the function behaves as if phî were all-ones.
std::vector<double> aggregation_weights(const std::vector<double>& phi_hat,
                                        const std::vector<double>& w_row);

/// Normalized share phî_j / sum_k phî_k — the quantity whose minimum is the
/// phi_hat_min constant in Theorem 1.
std::vector<double> normalized_shares(const std::vector<double>& phi_hat);

/// Extension of Eq. 19 for adversarial settings: players with *negative*
/// Shapley value (harmful on average to every coalition) are zeroed outright,
/// and the rest are scaled by the maximum:
///   phî_j = max(phi_j, 0) / max_k phi_k   (all-ones if max <= 0).
/// Unlike min-max normalization, this suppresses every harmful contributor,
/// not just the single worst one.
std::vector<double> relu_normalize(const std::vector<double>& phi);

}  // namespace pdsl::shapley
