#pragma once
// S-SHAP cross-round coalition value cache.
//
// A coalition's score v(S) (Eq. 16) depends only on (a) the bytes of every
// member's virtual model and (b) the evaluation context — the shared
// validation batch and the characteristic kind (accuracy vs -loss). Keys are
// therefore CONTENT-ADDRESSED: a per-round context hash chained (ascending
// member order) with the content hash of each member's virtual model. Under
// PDSL dynamics virtual models change every round, so cross-round hits come
// from coalitions whose members' inputs did not change — stale neighbors
// whose cached cross-gradient was reused (S-FAULT staleness), offline
// rounds, frozen/converged agents. Invalidation is implicit: changed content
// makes the old key unreachable, and round-stamped age eviction bounds the
// footprint.
//
// A hit returns the PREVIOUSLY COMPUTED double verbatim, so a cached path is
// bit-identical to recomputation (modulo 64-bit hash collisions, whose
// probability is ~ entries^2 / 2^65 — negligible at the <=2^16 entries a
// fleet agent ever holds).
//
// One ValueCache per agent: BatchedGame mutates it from inside
// runtime::parallel_for agent bodies, and the per-agent slot discipline
// (each index touched by exactly one task) is the concurrency story — no
// locks needed, TSan-verified by test_shapley under the verify skill.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "io/codec.hpp"

namespace pdsl::shapley {

/// FNV-1a over raw bytes, word-stepped (8 bytes per round + byte tail) so
/// hashing a ~50k-float model costs microseconds, not the round budget.
/// Seedable for chaining; deterministic across platforms of equal endianness
/// (we only compare hashes computed in-process, so endianness is moot).
std::uint64_t hash_bytes(const void* data, std::size_t bytes,
                         std::uint64_t seed = 14695981039346656037ULL);

/// Chain a 64-bit value into a running hash.
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  return hash_bytes(&v, sizeof v, h);
}

class ValueCache {
 public:
  struct Stats {
    std::size_t hits = 0;       ///< lifetime lookup hits
    std::size_t misses = 0;     ///< lifetime lookup misses
    std::size_t evictions = 0;  ///< entries dropped by age
  };

  /// Entries unused for `max_age_rounds` consecutive rounds are evicted at
  /// the next begin_round().
  explicit ValueCache(std::size_t max_age_rounds = 8);

  /// Arm the cache for a round: `context_hash` covers everything shared by
  /// all coalitions (validation batch bytes, characteristic kind), and
  /// `member_hashes[j]` is the content hash of local player j's virtual
  /// model. Also performs age-based eviction.
  void begin_round(std::size_t round, std::uint64_t context_hash,
                   std::vector<std::uint64_t> member_hashes);

  /// True + fills `out` if the coalition's content key is present.
  bool lookup(std::uint64_t mask, double& out);

  /// Record a freshly computed value under the coalition's content key.
  void store(std::uint64_t mask, double value);

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// S-RECOV checkpoint: append the full cache state (round cursor, context,
  /// member hashes, entries in sorted-key order, lifetime stats) to `buf`.
  /// Sorted emission makes the blob independent of unordered_map iteration
  /// order, so identical caches serialize to identical bytes.
  void serialize(io::ByteBuffer& buf) const;

  /// Restore state captured by serialize(); throws std::runtime_error on a
  /// malformed blob. Hit/miss telemetry is restored too, so the CSV cache
  /// columns continue bit-identically after a resume.
  void deserialize(io::ByteReader& r);

 private:
  [[nodiscard]] std::uint64_t key_for(std::uint64_t mask) const;

  struct Entry {
    double value;
    std::size_t last_used;
  };

  std::size_t max_age_;
  std::size_t round_ = 0;
  std::uint64_t context_ = 0;
  std::vector<std::uint64_t> member_hashes_;
  std::unordered_map<std::uint64_t, Entry> map_;
  Stats stats_;
};

}  // namespace pdsl::shapley
