#include "shapley/value_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace pdsl::shapley {

std::uint64_t hash_bytes(const void* data, std::size_t bytes, std::uint64_t seed) {
  // FNV-1a, folding 8 bytes per multiply. Not the textbook byte-stepped
  // variant, but the same avalanche structure; all that matters here is a
  // stable, well-mixed 64-bit content digest.
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, p + i, 8);
    h = (h ^ word) * kPrime;
  }
  for (; i < bytes; ++i) h = (h ^ p[i]) * kPrime;
  return h;
}

ValueCache::ValueCache(std::size_t max_age_rounds) : max_age_(max_age_rounds) {
  if (max_age_ == 0) throw std::invalid_argument("ValueCache: max_age_rounds must be >= 1");
}

void ValueCache::begin_round(std::size_t round, std::uint64_t context_hash,
                             std::vector<std::uint64_t> member_hashes) {
  round_ = round;
  context_ = context_hash;
  member_hashes_ = std::move(member_hashes);
  for (auto it = map_.begin(); it != map_.end();) {
    if (round_ > it->second.last_used && round_ - it->second.last_used > max_age_) {
      it = map_.erase(it);
      ++stats_.evictions;
    } else {
      ++it;
    }
  }
}

std::uint64_t ValueCache::key_for(std::uint64_t mask) const {
  if (mask == 0 || (member_hashes_.size() < 64 && mask >= (1ULL << member_hashes_.size()))) {
    throw std::out_of_range("ValueCache: mask out of range for the armed round");
  }
  // Chain member content hashes in ascending member order on top of the
  // round context. Two coalitions with identical member contents (across any
  // pair of rounds) produce the same key; any content change changes it.
  std::uint64_t h = context_;
  std::uint64_t m = mask;
  for (std::size_t j = 0; m != 0; ++j, m >>= 1) {
    if (m & 1ULL) h = hash_mix(h, member_hashes_[j]);
  }
  return h;
}

bool ValueCache::lookup(std::uint64_t mask, double& out) {
  const auto it = map_.find(key_for(mask));
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  it->second.last_used = round_;
  out = it->second.value;
  ++stats_.hits;
  return true;
}

void ValueCache::store(std::uint64_t mask, double value) {
  map_[key_for(mask)] = Entry{value, round_};
}

void ValueCache::serialize(io::ByteBuffer& buf) const {
  io::append_u64(buf, max_age_);
  io::append_u64(buf, round_);
  io::append_u64(buf, context_);
  io::append_u64(buf, member_hashes_.size());
  for (const auto h : member_hashes_) io::append_u64(buf, h);
  std::vector<std::uint64_t> keys;
  keys.reserve(map_.size());
  for (const auto& [key, entry] : map_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  io::append_u64(buf, keys.size());
  for (const auto key : keys) {
    const auto& entry = map_.at(key);
    io::append_u64(buf, key);
    io::append_f64(buf, entry.value);
    io::append_u64(buf, entry.last_used);
  }
  io::append_u64(buf, stats_.hits);
  io::append_u64(buf, stats_.misses);
  io::append_u64(buf, stats_.evictions);
}

void ValueCache::deserialize(io::ByteReader& r) {
  max_age_ = static_cast<std::size_t>(r.read_u64("value_cache max_age"));
  round_ = static_cast<std::size_t>(r.read_u64("value_cache round"));
  context_ = r.read_u64("value_cache context");
  const auto n_members = r.read_u64("value_cache member count");
  member_hashes_.assign(static_cast<std::size_t>(n_members), 0);
  for (auto& h : member_hashes_) h = r.read_u64("value_cache member hash");
  map_.clear();
  const auto n_entries = r.read_u64("value_cache entry count");
  for (std::uint64_t i = 0; i < n_entries; ++i) {
    const auto key = r.read_u64("value_cache entry key");
    Entry entry;
    entry.value = r.read_f64("value_cache entry value");
    entry.last_used = static_cast<std::size_t>(r.read_u64("value_cache entry last_used"));
    map_.emplace(key, entry);
  }
  stats_.hits = static_cast<std::size_t>(r.read_u64("value_cache hits"));
  stats_.misses = static_cast<std::size_t>(r.read_u64("value_cache misses"));
  stats_.evictions = static_cast<std::size_t>(r.read_u64("value_cache evictions"));
}

}  // namespace pdsl::shapley
