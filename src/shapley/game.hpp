#pragma once
// Cooperative game abstraction (S6, Definition 3). Players are indexed
// 0..n-1; coalitions are bitmasks (n <= 64). The characteristic function is
// expensive in PDSL (a validation-set evaluation per coalition, Eq. 16), so
// CachedGame memoizes values — both the exact enumeration and Monte Carlo
// estimation revisit coalitions heavily.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace pdsl::shapley {

/// v(S): coalition passed as a sorted list of member indices. By Definition 3
/// implementations must return 0 for the empty coalition; CachedGame
/// short-circuits that case and never calls the function with an empty set.
using CharacteristicFn = std::function<double(const std::vector<std::size_t>& coalition)>;

class CachedGame {
 public:
  CachedGame(std::size_t num_players, CharacteristicFn v);

  [[nodiscard]] std::size_t num_players() const { return n_; }

  /// Value of the coalition encoded in `mask` (bit j = player j present).
  double value(std::uint64_t mask);

  /// Number of distinct non-empty coalitions evaluated so far.
  [[nodiscard]] std::size_t evaluations() const { return evals_; }

  /// Members of a mask, ascending.
  [[nodiscard]] static std::vector<std::size_t> members(std::uint64_t mask);

  [[nodiscard]] std::uint64_t full_mask() const;

 private:
  std::size_t n_;
  CharacteristicFn v_;
  std::unordered_map<std::uint64_t, double> cache_;
  std::size_t evals_ = 0;
};

}  // namespace pdsl::shapley
