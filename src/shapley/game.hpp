#pragma once
// Cooperative game abstraction (S6, Definition 3). Players are indexed
// 0..n-1; coalitions are bitmasks (n <= 63). The characteristic function is
// expensive in PDSL (a validation-set evaluation per coalition, Eq. 16), so
// games memoize values — both the exact enumeration and Monte Carlo
// estimation revisit coalitions heavily.
//
// Two concrete games:
//  - CachedGame: one coalition at a time (the reference / default path).
//  - BatchedGame (S-SHAP): estimators announce the coalitions they are about
//    to need via prefetch(); the game resolves them against an optional
//    cross-round ValueCache and scores the remaining misses in ONE call to a
//    BatchCharacteristicFn, which can stack the coalition-average models into
//    a single blocked GEMM per layer (sim::CoalitionBatchEvaluator).

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace pdsl::shapley {

class ValueCache;

/// v(S): coalition passed as a sorted list of member indices. By Definition 3
/// implementations must return 0 for the empty coalition; games
/// short-circuit that case and never call the function with an empty set.
using CharacteristicFn = std::function<double(const std::vector<std::size_t>& coalition)>;

/// Batched v(S): masks in, one value per mask out (same order). Masks are
/// non-empty, in range and pairwise distinct; the implementation may evaluate
/// them jointly (stacked GEMM) or loop — either way each value must be
/// bit-identical to what the sequential characteristic would return.
using BatchCharacteristicFn =
    std::function<std::vector<double>(const std::vector<std::uint64_t>& masks)>;

/// Abstract coalition game over bitmask coalitions. Estimators in
/// shapley.hpp take `Game&` and may call prefetch() with the coalitions they
/// are about to evaluate; the default implementation ignores the hint.
class Game {
 public:
  explicit Game(std::size_t num_players);
  virtual ~Game() = default;

  [[nodiscard]] std::size_t num_players() const { return n_; }

  /// Value of the coalition encoded in `mask` (bit j = player j present).
  virtual double value(std::uint64_t mask) = 0;

  /// Number of distinct non-empty coalitions evaluated so far (cache hits —
  /// within-round memo or cross-round ValueCache — do not count).
  [[nodiscard]] virtual std::size_t evaluations() const = 0;

  /// Hint: these masks are about to be requested via value(), in this order.
  /// Duplicates, empty and already-known masks are allowed; out-of-range
  /// masks are not. Default: no-op.
  virtual void prefetch(const std::vector<std::uint64_t>& masks) { (void)masks; }

  /// Members of a mask, ascending.
  [[nodiscard]] static std::vector<std::size_t> members(std::uint64_t mask);

  [[nodiscard]] std::uint64_t full_mask() const;

 protected:
  std::size_t n_;
};

/// Reference game: memoizes one coalition evaluation at a time.
class CachedGame final : public Game {
 public:
  CachedGame(std::size_t num_players, CharacteristicFn v);

  double value(std::uint64_t mask) override;
  [[nodiscard]] std::size_t evaluations() const override { return evals_; }

 private:
  CharacteristicFn v_;
  std::unordered_map<std::uint64_t, double> cache_;
  std::size_t evals_ = 0;
};

/// Per-round instrumentation of a BatchedGame.
struct BatchedGameStats {
  std::size_t evaluations = 0;          ///< characteristic evaluations actually run
  std::size_t coalitions_batched = 0;   ///< of those, scored through a prefetch batch
  std::size_t cache_hits = 0;           ///< served from the cross-round ValueCache
  std::size_t cache_misses = 0;         ///< looked up in the ValueCache and absent
};

/// S-SHAP game: prefetch() resolves pending masks against the cross-round
/// `cache` (may be null) and evaluates all remaining misses in one
/// BatchCharacteristicFn call. value() on a mask that was never prefetched
/// falls back to a singleton batch, so estimators that cannot announce their
/// coalitions up front (e.g. truncated MC) still work, just unbatched.
class BatchedGame final : public Game {
 public:
  BatchedGame(std::size_t num_players, BatchCharacteristicFn batch_v,
              ValueCache* cache = nullptr);

  double value(std::uint64_t mask) override;
  [[nodiscard]] std::size_t evaluations() const override { return stats_.evaluations; }
  void prefetch(const std::vector<std::uint64_t>& masks) override;

  [[nodiscard]] const BatchedGameStats& stats() const { return stats_; }

 private:
  /// Looks `mask` up in the cross-round cache; memoizes and returns true on
  /// a hit. Counts hit/miss only when a cache is attached.
  bool from_cache(std::uint64_t mask);
  void check_range(std::uint64_t mask) const;

  BatchCharacteristicFn batch_v_;
  ValueCache* cache_;
  std::unordered_map<std::uint64_t, double> memo_;
  BatchedGameStats stats_;
};

}  // namespace pdsl::shapley
