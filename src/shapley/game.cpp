#include "shapley/game.hpp"

#include <stdexcept>

namespace pdsl::shapley {

CachedGame::CachedGame(std::size_t num_players, CharacteristicFn v)
    : n_(num_players), v_(std::move(v)) {
  if (n_ == 0) throw std::invalid_argument("CachedGame: need at least one player");
  if (n_ > 63) throw std::invalid_argument("CachedGame: at most 63 players (bitmask coalitions)");
  if (!v_) throw std::invalid_argument("CachedGame: null characteristic function");
}

double CachedGame::value(std::uint64_t mask) {
  if (mask == 0) return 0.0;  // v(emptyset) = 0 by Definition 3
  if (mask >= (1ULL << n_)) throw std::out_of_range("CachedGame::value: mask out of range");
  const auto it = cache_.find(mask);
  if (it != cache_.end()) return it->second;
  const double val = v_(members(mask));
  cache_.emplace(mask, val);
  ++evals_;
  return val;
}

std::vector<std::size_t> CachedGame::members(std::uint64_t mask) {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; mask != 0; ++j, mask >>= 1) {
    if (mask & 1ULL) out.push_back(j);
  }
  return out;
}

std::uint64_t CachedGame::full_mask() const {
  return n_ == 63 ? ~0ULL >> 1 : (1ULL << n_) - 1;
}

}  // namespace pdsl::shapley
