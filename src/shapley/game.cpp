#include "shapley/game.hpp"

#include <algorithm>
#include <stdexcept>

#include "shapley/value_cache.hpp"

namespace pdsl::shapley {

Game::Game(std::size_t num_players) : n_(num_players) {
  if (n_ == 0) throw std::invalid_argument("shapley::Game: need at least one player");
  if (n_ > 63) {
    throw std::invalid_argument(
        "shapley::Game: at most 63 players — coalitions are uint64_t bitmasks. "
        "Dense neighborhoods of a large fleet exceed this; use a sparse topology "
        "(--sparse with bounded degree) so every closed neighborhood stays <= 63.");
  }
}

std::vector<std::size_t> Game::members(std::uint64_t mask) {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; mask != 0; ++j, mask >>= 1) {
    if (mask & 1ULL) out.push_back(j);
  }
  return out;
}

std::uint64_t Game::full_mask() const {
  return n_ == 63 ? ~0ULL >> 1 : (1ULL << n_) - 1;
}

CachedGame::CachedGame(std::size_t num_players, CharacteristicFn v)
    : Game(num_players), v_(std::move(v)) {
  if (!v_) throw std::invalid_argument("CachedGame: null characteristic function");
}

double CachedGame::value(std::uint64_t mask) {
  if (mask == 0) return 0.0;  // v(emptyset) = 0 by Definition 3
  if (mask >= (1ULL << n_)) throw std::out_of_range("CachedGame::value: mask out of range");
  const auto it = cache_.find(mask);
  if (it != cache_.end()) return it->second;
  const double val = v_(members(mask));
  cache_.emplace(mask, val);
  ++evals_;
  return val;
}

BatchedGame::BatchedGame(std::size_t num_players, BatchCharacteristicFn batch_v,
                         ValueCache* cache)
    : Game(num_players), batch_v_(std::move(batch_v)), cache_(cache) {
  if (!batch_v_) throw std::invalid_argument("BatchedGame: null batch characteristic function");
}

void BatchedGame::check_range(std::uint64_t mask) const {
  if (mask >= (1ULL << n_)) throw std::out_of_range("BatchedGame: mask out of range");
}

bool BatchedGame::from_cache(std::uint64_t mask) {
  if (cache_ == nullptr) return false;
  double v = 0.0;
  if (cache_->lookup(mask, v)) {
    memo_.emplace(mask, v);
    ++stats_.cache_hits;
    return true;
  }
  ++stats_.cache_misses;
  return false;
}

double BatchedGame::value(std::uint64_t mask) {
  if (mask == 0) return 0.0;
  check_range(mask);
  const auto it = memo_.find(mask);
  if (it != memo_.end()) return it->second;
  if (from_cache(mask)) return memo_.at(mask);
  const std::vector<double> vals = batch_v_({mask});
  if (vals.size() != 1) throw std::logic_error("BatchedGame: batch fn returned wrong count");
  memo_.emplace(mask, vals[0]);
  if (cache_ != nullptr) cache_->store(mask, vals[0]);
  ++stats_.evaluations;
  return vals[0];
}

void BatchedGame::prefetch(const std::vector<std::uint64_t>& masks) {
  // Pending = first occurrence of each mask that is non-empty, unknown to the
  // within-round memo and absent from the cross-round cache, in announcement
  // order (so the batch composition is deterministic).
  std::vector<std::uint64_t> pending;
  pending.reserve(masks.size());
  for (const std::uint64_t mask : masks) {
    if (mask == 0) continue;
    check_range(mask);
    if (memo_.count(mask) != 0) continue;
    bool seen = false;
    for (const std::uint64_t p : pending) {
      if (p == mask) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    if (from_cache(mask)) continue;
    pending.push_back(mask);
  }
  if (pending.empty()) return;
  // Chunk so the batch evaluator's stacked weight/activation buffers stay
  // bounded even when an exact enumeration announces 2^n coalitions at once.
  constexpr std::size_t kMaxBatch = 512;
  std::vector<std::uint64_t> chunk;
  for (std::size_t start = 0; start < pending.size(); start += kMaxBatch) {
    const std::size_t count = std::min(kMaxBatch, pending.size() - start);
    chunk.assign(pending.begin() + static_cast<std::ptrdiff_t>(start),
                 pending.begin() + static_cast<std::ptrdiff_t>(start + count));
    const std::vector<double> vals = batch_v_(chunk);
    if (vals.size() != chunk.size()) {
      throw std::logic_error("BatchedGame: batch fn returned wrong count");
    }
    for (std::size_t k = 0; k < chunk.size(); ++k) {
      memo_.emplace(chunk[k], vals[k]);
      if (cache_ != nullptr) cache_->store(chunk[k], vals[k]);
    }
    stats_.evaluations += chunk.size();
    stats_.coalitions_batched += chunk.size();
  }
}

}  // namespace pdsl::shapley
