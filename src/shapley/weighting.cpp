#include "shapley/weighting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdsl::shapley {

std::vector<double> minmax_normalize(const std::vector<double>& phi) {
  if (phi.empty()) throw std::invalid_argument("minmax_normalize: empty input");
  const auto [mn_it, mx_it] = std::minmax_element(phi.begin(), phi.end());
  const double mn = *mn_it, mx = *mx_it;
  if (mx - mn < 1e-12) return std::vector<double>(phi.size(), 1.0);
  std::vector<double> out(phi.size());
  for (std::size_t i = 0; i < phi.size(); ++i) out[i] = (phi[i] - mn) / (mx - mn);
  return out;
}

std::vector<double> aggregation_weights(const std::vector<double>& phi_hat,
                                        const std::vector<double>& w_row) {
  if (phi_hat.size() != w_row.size() || phi_hat.empty()) {
    throw std::invalid_argument("aggregation_weights: arity mismatch");
  }
  double total = 0.0;
  for (double v : phi_hat) {
    if (v < 0.0) throw std::invalid_argument("aggregation_weights: negative phi_hat");
    total += v;
  }
  std::vector<double> shares(phi_hat.size());
  if (total <= 1e-12) {
    std::fill(shares.begin(), shares.end(), 1.0 / static_cast<double>(phi_hat.size()));
  } else {
    for (std::size_t i = 0; i < phi_hat.size(); ++i) shares[i] = phi_hat[i] / total;
  }
  std::vector<double> pi(phi_hat.size());
  for (std::size_t i = 0; i < phi_hat.size(); ++i) {
    if (w_row[i] <= 0.0) {
      throw std::invalid_argument("aggregation_weights: non-positive mixing weight");
    }
    pi[i] = shares[i] / w_row[i];
  }
  return pi;
}

std::vector<double> relu_normalize(const std::vector<double>& phi) {
  if (phi.empty()) throw std::invalid_argument("relu_normalize: empty input");
  const double mx = *std::max_element(phi.begin(), phi.end());
  if (mx <= 1e-12) return std::vector<double>(phi.size(), 1.0);
  std::vector<double> out(phi.size());
  for (std::size_t i = 0; i < phi.size(); ++i) out[i] = std::max(phi[i], 0.0) / mx;
  return out;
}

std::vector<double> normalized_shares(const std::vector<double>& phi_hat) {
  double total = 0.0;
  for (double v : phi_hat) total += v;
  std::vector<double> out(phi_hat.size());
  if (total <= 1e-12) {
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(phi_hat.size()));
  } else {
    for (std::size_t i = 0; i < phi_hat.size(); ++i) out[i] = phi_hat[i] / total;
  }
  return out;
}

}  // namespace pdsl::shapley
