#include "obs/trace.hpp"

#include <fstream>
#include <stdexcept>

namespace pdsl::obs {

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::global() {
  static auto* instance = new TraceRecorder();  // leaky: outlives static dtors
  return *instance;
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::record(TraceEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

json::Value TraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Array events;
  events.reserve(events_.size());
  for (const auto& ev : events_) {
    json::Object o;
    o["name"] = ev.name;
    o["cat"] = ev.cat;
    o["ph"] = "X";
    o["ts"] = ev.ts_us;
    o["dur"] = ev.dur_us;
    o["pid"] = 0;
    o["tid"] = static_cast<std::size_t>(ev.tid);
    if (ev.arg_name != nullptr) {
      json::Object args;
      args[ev.arg_name] = ev.arg_value;
      o["args"] = json::Value(std::move(args));
    }
    events.push_back(json::Value(std::move(o)));
  }
  json::Object top;
  top["traceEvents"] = json::Value(std::move(events));
  top["displayTimeUnit"] = "ms";
  return json::Value(std::move(top));
}

void TraceRecorder::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TraceRecorder::write: cannot open " + path);
  out << to_json().dump(2) << '\n';
  if (!out) throw std::runtime_error("TraceRecorder::write: write failed for " + path);
}

std::uint32_t TraceRecorder::thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id = next.fetch_add(1);
  return id;
}

void ScopedSpan::begin(const char* name, const char* cat, const char* arg_name,
                       std::int64_t arg_value) {
  rec_ = &TraceRecorder::global();
  name_ = name;
  cat_ = cat;
  arg_name_ = arg_name;
  arg_value_ = arg_value;
  start_us_ = rec_->now_us();
}

void ScopedSpan::end() {
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.ts_us = start_us_;
  ev.dur_us = rec_->now_us() - start_us_;
  ev.tid = TraceRecorder::thread_id();
  ev.arg_name = arg_name_;
  ev.arg_value = arg_value_;
  rec_->record(std::move(ev));
}

}  // namespace pdsl::obs
