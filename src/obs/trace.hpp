#pragma once
// Phase-level tracing (S-OBS). A TraceRecorder collects complete-span events
// ("ph":"X") and exports Chrome trace-event JSON loadable in chrome://tracing
// or https://ui.perfetto.dev. Spans are RAII (`PDSL_SPAN("shapley_eval", i)`):
// construction samples the clock, destruction records the event.
//
// Cost model: tracing is OFF by default. A disabled span is one relaxed
// atomic load and a null pointer — no lock, no allocation, no clock read —
// so instrumentation can live permanently in hot loops. When enabled, each
// span takes the recorder mutex once at destruction.
//
// Thread-safety (S-RT audit): the recorder is safe from
// runtime::parallel_for worker threads — record/size/clear/to_json serialize
// on one mutex, enable/enabled are atomic, and thread_id() hands each thread
// a stable small id (so spans from pool workers land on distinct Chrome
// rows). ScopedSpan objects are per-scope and never shared, so PDSL_SPAN is
// fine inside parallel bodies. Only enable()/clear()/write() belong on the
// driver thread, between parallel regions — toggling mid-region just makes a
// ragged trace, it cannot corrupt state.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace pdsl::obs {

/// One complete ("X") trace event. Argument names must be string literals
/// (or otherwise outlive the recorder); values are integral.
struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;   ///< start, microseconds since recorder epoch
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  const char* arg_name = nullptr;
  std::int64_t arg_value = 0;
};

class TraceRecorder {
 public:
  /// Process-wide recorder (leaky singleton; safe from static destructors).
  static TraceRecorder& global();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the recorder's epoch (steady clock).
  [[nodiscard]] double now_us() const;

  void record(TraceEvent ev);
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} snapshot.
  [[nodiscard]] json::Value to_json() const;
  /// Serialize to_json() to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

  /// Stable small id for the calling thread (Chrome "tid" field).
  static std::uint32_t thread_id();

  TraceRecorder();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span against the global recorder. If tracing is disabled at
/// construction the object is inert (no clock read, no event).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "phase") {
    if (TraceRecorder::global().enabled()) begin(name, cat, nullptr, 0);
  }
  ScopedSpan(const char* name, std::int64_t id, const char* cat = "phase") {
    if (TraceRecorder::global().enabled()) begin(name, cat, "id", id);
  }
  ScopedSpan(const char* name, std::size_t id, const char* cat = "phase")
      : ScopedSpan(name, static_cast<std::int64_t>(id), cat) {}
  ~ScopedSpan() { if (rec_ != nullptr) end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach/overwrite the span's single integral argument.
  void set_arg(const char* name, std::int64_t value) {
    arg_name_ = name;
    arg_value_ = value;
  }

 private:
  void begin(const char* name, const char* cat, const char* arg_name, std::int64_t arg_value);
  void end();

  TraceRecorder* rec_ = nullptr;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  const char* arg_name_ = nullptr;
  std::int64_t arg_value_ = 0;
  double start_us_ = 0.0;
};

// NOLINTBEGIN(cppcoreguidelines-macro-usage)
#define PDSL_OBS_CONCAT2(a, b) a##b
#define PDSL_OBS_CONCAT(a, b) PDSL_OBS_CONCAT2(a, b)
/// Scoped span tied to the enclosing block: PDSL_SPAN("shapley_eval", agent).
#define PDSL_SPAN(...) \
  ::pdsl::obs::ScopedSpan PDSL_OBS_CONCAT(pdsl_span_, __LINE__)(__VA_ARGS__)
// NOLINTEND(cppcoreguidelines-macro-usage)

}  // namespace pdsl::obs
