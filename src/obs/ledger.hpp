#pragma once
// Run-ledger export (S-BENCH360): a structured JSONL event sink that records
// round-level internals of a run — per-round privacy spend at the RDP
// accountant, Shapley pi/phi vectors, fault/Byzantine counters, per-phase
// wall time — so any experiment's internals are replayable into the report
// tooling (tools/run_benchmarks.py) without rerunning the experiment.
//
// Format: one JSON object per line. Every line carries
//   {"seq": <n>, "type": "<event>", ...fields}
// with seq strictly increasing from 0 and keys serialized in sorted order
// (json::Object is a std::map), so a ledger is byte-comparable.
//
// Determinism contract (S-RT): events are only ever emitted from the driver
// thread (the run_with_metrics round loop and Algorithm::ledger_round hooks),
// never from inside runtime::parallel_for bodies. All fields are derived from
// deterministic run state EXCEPT two volatile event types: "phase_timing"
// (wall-clock measurements) and "run_env" (execution-environment identity
// such as the --threads width, which legitimately differs between otherwise
// identical runs). Stripping those lines, a ledger is bit-identical across
// reruns and across --threads widths (tested in test_obs.cpp).

#include <cstddef>
#include <fstream>
#include <string>

#include "common/json.hpp"

namespace pdsl::obs {

class RunLedger {
 public:
  /// A default-constructed ledger is disabled: event() is a cheap no-op, so
  /// call sites can emit unconditionally.
  RunLedger() = default;
  ~RunLedger();
  RunLedger(const RunLedger&) = delete;
  RunLedger& operator=(const RunLedger&) = delete;

  /// Open (truncate) `path` and enable the sink. Throws std::runtime_error
  /// when the file cannot be created.
  void open(const std::string& path);

  [[nodiscard]] bool enabled() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t events_written() const { return seq_; }

  /// Append one event line: `fields` plus {"seq": n, "type": type}. The seq
  /// and type keys are reserved; fields carrying them are overwritten.
  void event(const std::string& type, json::Object fields);

  /// Flush and close; enabled() is false afterwards. Idempotent.
  void close();

  /// The volatile event types (wall-clock payloads / execution-environment
  /// identity), excluded from the bit-identity contract. Tooling filters on
  /// them by name.
  static constexpr const char* kTimingEvent = "phase_timing";
  static constexpr const char* kEnvEvent = "run_env";

 private:
  std::ofstream out_;
  std::string path_;
  std::size_t seq_ = 0;
};

}  // namespace pdsl::obs
