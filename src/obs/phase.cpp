#include "obs/phase.hpp"

#include <cstdio>
#include <stdexcept>

namespace pdsl::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kLocalGrad: return "local_grad";
    case Phase::kCrossGrad: return "crossgrad";
    case Phase::kShapley: return "shapley";
    case Phase::kAggregate: return "aggregate";
    case Phase::kGossip: return "gossip";
    default: return "unknown";
  }
}

double& PhaseTimings::at(Phase p) {
  switch (p) {
    case Phase::kLocalGrad: return local_grad_s;
    case Phase::kCrossGrad: return crossgrad_s;
    case Phase::kShapley: return shapley_s;
    case Phase::kAggregate: return aggregate_s;
    case Phase::kGossip: return gossip_s;
    default: throw std::out_of_range("PhaseTimings::at: bad phase");
  }
}

double PhaseTimings::at(Phase p) const { return const_cast<PhaseTimings*>(this)->at(p); }

PhaseTimings& PhaseTimings::operator+=(const PhaseTimings& o) {
  local_grad_s += o.local_grad_s;
  crossgrad_s += o.crossgrad_s;
  shapley_s += o.shapley_s;
  aggregate_s += o.aggregate_s;
  gossip_s += o.gossip_s;
  return *this;
}

std::string format_phase_table(const PhaseTimings& totals, std::size_t rounds) {
  const double denom = totals.total() > 0.0 ? totals.total() : 1.0;
  const double r = rounds > 0 ? static_cast<double>(rounds) : 1.0;
  char line[128];
  std::string out;
  std::snprintf(line, sizeof(line), "%-11s %10s %13s %7s\n", "phase", "total_s", "ms_per_round",
                "share");
  out += line;
  for (std::size_t k = 0; k < kNumPhases; ++k) {
    const auto p = static_cast<Phase>(k);
    const double s = totals.at(p);
    std::snprintf(line, sizeof(line), "%-11s %10.4f %13.3f %6.1f%%\n", phase_name(p), s,
                  1e3 * s / r, 100.0 * s / denom);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-11s %10.4f %13.3f\n", "total", totals.total(),
                1e3 * totals.total() / r);
  out += line;
  return out;
}

}  // namespace pdsl::obs
