#pragma once
// The five structural phases of one decentralized-learning round and their
// per-round wall-time breakdown (S-OBS). Every algorithm accounts its work to
// these buckets via PhaseScope; run_with_metrics snapshots the accumulator
// into sim::RoundMetrics so benches and the CLI can print where a round's
// time actually goes (the aggregate elapsed_s hid that entirely).

#include <cstddef>
#include <string>

#include "common/stopwatch.hpp"
#include "obs/trace.hpp"

namespace pdsl::obs {

enum class Phase : int {
  kLocalGrad = 0,  ///< local mini-batch gradient + DP clip/noise
  kCrossGrad,      ///< cross-gradient computation on neighbors' models
  kShapley,        ///< coalition scoring + Shapley weight estimation
  kAggregate,      ///< weighted gradient aggregation + momentum/model update
  kGossip,         ///< mixing-matrix averaging over the network
  kCount,
};

inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

/// Stable lowercase name ("local_grad", ...); also the trace span name.
const char* phase_name(Phase p);

/// Seconds spent per phase within one round (or summed over a run).
struct PhaseTimings {
  double local_grad_s = 0.0;
  double crossgrad_s = 0.0;
  double shapley_s = 0.0;
  double aggregate_s = 0.0;
  double gossip_s = 0.0;

  double& at(Phase p);
  [[nodiscard]] double at(Phase p) const;
  [[nodiscard]] double total() const {
    return local_grad_s + crossgrad_s + shapley_s + aggregate_s + gossip_s;
  }
  PhaseTimings& operator+=(const PhaseTimings& o);
};

/// Human-readable per-phase table (total seconds, ms/round, share of total).
std::string format_phase_table(const PhaseTimings& totals, std::size_t rounds);

/// RAII: adds the scope's wall time to `acc.at(p)` and emits a trace span
/// named after the phase. The stopwatch always runs (it feeds PhaseTimings,
/// which RoundMetrics reports unconditionally); only the span is gated on
/// tracing being enabled.
///
/// Thread-safety (S-RT): NOT safe to use concurrently — the destructor does a
/// plain (non-atomic) `+=` on the shared PhaseTimings. Phase timers must live
/// on the driver thread, wrapping a whole runtime::parallel_for region, never
/// inside a parallel body. (Per-item spans inside a body are fine: use
/// PDSL_SPAN, whose recorder is mutex-protected.)
class PhaseScope {
 public:
  PhaseScope(PhaseTimings& acc, Phase p, std::int64_t round = -1)
      : acc_(acc), p_(p), span_(phase_name(p)) {
    if (round >= 0) span_.set_arg("round", round);
  }
  ~PhaseScope() { acc_.at(p_) += watch_.elapsed_seconds(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseTimings& acc_;
  Phase p_;
  ScopedSpan span_;
  Stopwatch watch_;
};

}  // namespace pdsl::obs
