#pragma once
// Process-wide metrics registry (S-OBS): named counters, gauges and
// fixed-bucket histograms shared by every layer of the stack. Handles are
// looked up once (by name, under a mutex) and then updated lock-free with
// relaxed atomics, so instrumented hot loops pay one fetch_add per event.
// Objects are owned by the registry and never move or die, so cached
// references (`static obs::Counter& c = ...`) stay valid for the process
// lifetime. Snapshots dump to JSON or CSV for offline analysis.
//
// Thread-safety (S-RT audit): everything here is safe from
// runtime::parallel_for worker threads. Lookups (counter/gauge/histogram)
// serialize on the registry mutex; updates (add/set/observe) are atomic; a
// handle obtained on any thread — including a function-local
// `static obs::Counter& c = ...` (magic statics are thread-safe) — may be
// cached and updated from every thread. Counts are exact; Histogram's
// cross-field invariants (count vs sum vs buckets) are only eventually
// consistent under concurrent observe+snapshot, which is fine for reporting.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace pdsl::obs {

/// Monotonically increasing event count (messages sent, coalitions evaluated).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (dp.sigma, current round).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket k counts observations <= bounds[k]; one
/// implicit overflow bucket collects the rest. Bounds are fixed at creation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;                  ///< ascending upper edges
  std::deque<std::atomic<std::uint64_t>> buckets_;  ///< deque: atomics don't move
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> instrument map. Lookup registers on first use; concurrent lookups
/// and updates are safe. `global()` is the process-wide instance everything
/// instruments against (leaky singleton: safe to use from static destructors).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First creation fixes the bounds; later calls ignore `upper_bounds`.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// bounds, buckets}}} — a point-in-time snapshot.
  [[nodiscard]] json::Value to_json() const;
  /// One row per instrument: kind,name,value,count,sum.
  void write_csv(const std::string& path) const;
  /// Zero every value but keep registrations (cached handles stay valid).
  void reset();
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace pdsl::obs
