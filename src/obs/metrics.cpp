#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/csv.hpp"

namespace pdsl::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  buckets_.resize(bounds_.size() + 1);  // + overflow
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto k = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[k].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static auto* instance = new MetricsRegistry();  // leaky: outlives static dtors
  return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

json::Value MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Object counters;
  for (const auto& [name, c] : counters_) counters[name] = c->value();
  json::Object gauges;
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  json::Object histograms;
  for (const auto& [name, h] : histograms_) {
    json::Object ho;
    ho["count"] = h->count();
    ho["sum"] = h->sum();
    json::Array bounds;
    for (double b : h->bounds()) bounds.push_back(json::Value(b));
    ho["bounds"] = json::Value(std::move(bounds));
    json::Array buckets;
    for (std::uint64_t c : h->bucket_counts()) buckets.push_back(json::Value(c));
    ho["buckets"] = json::Value(std::move(buckets));
    histograms[name] = json::Value(std::move(ho));
  }
  json::Object o;
  o["counters"] = json::Value(std::move(counters));
  o["gauges"] = json::Value(std::move(gauges));
  o["histograms"] = json::Value(std::move(histograms));
  return json::Value(std::move(o));
}

void MetricsRegistry::write_csv(const std::string& path) const {
  CsvWriter csv(path, {"kind", "name", "value", "count", "sum"});
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) csv.row("counter", name, c->value(), "", "");
  for (const auto& [name, g] : gauges_) csv.row("gauge", name, g->value(), "", "");
  for (const auto& [name, h] : histograms_) {
    csv.row("histogram", name, "", h->count(), h->sum());
  }
  csv.flush();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace pdsl::obs
