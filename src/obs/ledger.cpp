#include "obs/ledger.hpp"

#include <stdexcept>
#include <utility>

namespace pdsl::obs {

RunLedger::~RunLedger() { close(); }

void RunLedger::open(const std::string& path) {
  close();
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("RunLedger: cannot open '" + path + "' for writing");
  }
  path_ = path;
  seq_ = 0;
}

void RunLedger::event(const std::string& type, json::Object fields) {
  if (!out_.is_open()) return;
  fields["seq"] = seq_;
  fields["type"] = type;
  out_ << json::Value(std::move(fields)).dump() << '\n';
  ++seq_;
}

void RunLedger::close() {
  if (!out_.is_open()) return;
  out_.flush();
  out_.close();
}

}  // namespace pdsl::obs
