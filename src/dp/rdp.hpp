#pragma once
// Rényi differential privacy accountant for the Gaussian mechanism — the
// moments-accountant-style composition that modern DP-SGD uses, provided as
// an extension beyond the paper's per-round analysis. For noise multiplier
// z = sigma / sensitivity, the Gaussian mechanism satisfies RDP of order
// alpha with epsilon_RDP(alpha) = alpha / (2 z^2); RDP composes additively,
// and converts to (epsilon, delta)-DP via
//   epsilon = min_alpha [ eps_RDP(alpha) + log(1/delta) / (alpha - 1) ].

#include <cstddef>
#include <vector>

namespace pdsl::dp {

class RdpAccountant {
 public:
  /// Orders to track. Defaults cover the useful range for T <= ~10^5 rounds.
  explicit RdpAccountant(std::vector<double> orders = default_orders());

  /// Record `count` Gaussian-mechanism invocations with noise multiplier
  /// z = sigma / l2_sensitivity (must be > 0).
  void add_gaussian(double noise_multiplier, std::size_t count = 1);

  /// Tightest (epsilon, delta)-DP conversion over the tracked orders.
  [[nodiscard]] double epsilon(double delta) const;

  /// The order achieving the minimum in epsilon(delta).
  [[nodiscard]] double best_order(double delta) const;

  [[nodiscard]] std::size_t num_invocations() const { return invocations_; }

  /// Raw accumulator state, for S-RECOV checkpointing. The per-order eps_RDP
  /// sums must be persisted verbatim (re-deriving them from one bulk
  /// add_gaussian call accumulates in a different order and breaks the
  /// epsilon_spent bit-identity contract on resume).
  [[nodiscard]] const std::vector<double>& orders() const { return orders_; }
  [[nodiscard]] const std::vector<double>& accumulated_rdp() const { return rdp_; }

  /// Restore accumulator state captured from accumulated_rdp(); throws
  /// std::runtime_error if `rdp` does not match the tracked orders.
  void restore(std::vector<double> rdp, std::size_t invocations);

  static std::vector<double> default_orders();

 private:
  std::vector<double> orders_;
  std::vector<double> rdp_;  ///< accumulated eps_RDP per order
  std::size_t invocations_ = 0;
};

}  // namespace pdsl::dp
