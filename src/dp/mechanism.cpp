#include "dp/mechanism.hpp"

#include <cmath>
#include <stdexcept>

#include "common/vec_math.hpp"
#include "obs/metrics.hpp"

namespace pdsl::dp {

double clip_l2(std::vector<float>& g, double threshold) {
  if (threshold <= 0.0) throw std::invalid_argument("clip_l2: threshold must be positive");
  const double norm = l2_norm(g);
  const double denom = std::max(1.0, norm / threshold);
  // grad.clip_fraction = grad.clipped / grad.clip_total; the norm histogram
  // shows how far gradients sit from the clipping threshold.
  static obs::Counter& total = obs::MetricsRegistry::global().counter("grad.clip_total");
  static obs::Counter& clipped = obs::MetricsRegistry::global().counter("grad.clipped");
  static obs::Histogram& norms = obs::MetricsRegistry::global().histogram(
      "grad.l2_norm", {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0});
  total.add(1);
  norms.observe(norm);
  if (denom > 1.0) {
    clipped.add(1);
    const auto inv = static_cast<float>(1.0 / denom);
    for (auto& v : g) v *= inv;
  }
  return norm;
}

std::vector<float> clipped_l2(const std::vector<float>& g, double threshold) {
  std::vector<float> out = g;
  clip_l2(out, threshold);
  return out;
}

void add_gaussian_noise(std::vector<float>& g, double sigma, Rng& rng) {
  if (sigma < 0.0) throw std::invalid_argument("add_gaussian_noise: negative sigma");
  if (sigma == 0.0) return;
  for (auto& v : g) v += static_cast<float>(rng.normal(0.0, sigma));
}

double gaussian_sigma(double l2_sensitivity, double epsilon, double delta) {
  if (epsilon <= 0.0) throw std::invalid_argument("gaussian_sigma: epsilon must be positive");
  if (delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("gaussian_sigma: delta must be in (0,1)");
  }
  if (l2_sensitivity < 0.0) throw std::invalid_argument("gaussian_sigma: negative sensitivity");
  return std::sqrt(2.0 * std::log(1.25 / delta)) * l2_sensitivity / epsilon;
}

std::vector<float> privatize(const std::vector<float>& g, double clip, double sigma, Rng& rng) {
  std::vector<float> out = g;
  clip_l2(out, clip);
  add_gaussian_noise(out, sigma, rng);
  return out;
}

}  // namespace pdsl::dp
