#pragma once
// Theorem-1 noise calibration. Given the mixing matrix, the clipping
// threshold C and a lower bound on the normalized Shapley share, computes the
// smallest sigma that guarantees (epsilon, delta)-DP per round of Algorithm 1:
//
//   sigma >= max_i  2C (1/w_min + sum_{j in M_i} 1/w_ij) sqrt(2 ln(1.25/delta))
//                   -------------------------------------------------------
//                   phi_hat_min * epsilon * sqrt(sum_{j in M_i} w_ij^{-2})

#include "graph/mixing.hpp"

namespace pdsl::dp {

struct Theorem1Params {
  double epsilon = 0.1;
  double delta = 1e-3;
  double clip = 1.0;          ///< C
  double phi_hat_min = 0.1;   ///< lower bound on phî_ij / sum_k phî_ik (in (0, 1])
};

/// Per-agent sigma bound (the expression inside Theorem 1's max).
double theorem1_sigma_for_agent(const graph::MixingMatrix& w, std::size_t agent,
                                const Theorem1Params& p);

/// The Theorem-1 bound: max over agents.
double theorem1_sigma(const graph::MixingMatrix& w, const Theorem1Params& p);

/// Effective L2 sensitivity bound from the Theorem-1 proof (Eq. 41):
/// Delta_2 q <= 2C/w_min + sum_{j in M_i} 2C/w_ij (for the worst agent).
double theorem1_sensitivity(const graph::MixingMatrix& w, double clip);

}  // namespace pdsl::dp
