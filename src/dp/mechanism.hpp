#pragma once
// Gaussian mechanism building blocks (S5): L2 clipping (Eq. 10/13) and noise
// injection (Eq. 11/14). All algorithms share these so their privacy
// treatment is identical up to where the noise is applied.

#include <vector>

#include "common/rng.hpp"

namespace pdsl::dp {

/// Clip `g` in place to L2 norm at most `threshold` (the paper's Eq. 10):
/// g <- g / max(1, ||g|| / C). Returns the pre-clip norm.
double clip_l2(std::vector<float>& g, double threshold);

/// Out-of-place variant.
[[nodiscard]] std::vector<float> clipped_l2(const std::vector<float>& g, double threshold);

/// Add i.i.d. N(0, sigma^2) noise to every coordinate (Eq. 11).
void add_gaussian_noise(std::vector<float>& g, double sigma, Rng& rng);

/// Standard Gaussian-mechanism noise scale for (epsilon, delta)-DP given L2
/// sensitivity `l2_sensitivity` (Dwork & Roth, Thm. 3.22):
///   sigma >= sqrt(2 ln(1.25/delta)) * sensitivity / epsilon
/// Requires delta in (0,1) and epsilon > 0.
[[nodiscard]] double gaussian_sigma(double l2_sensitivity, double epsilon, double delta);

/// Clip-then-perturb in one call; returns the privatized gradient.
[[nodiscard]] std::vector<float> privatize(const std::vector<float>& g, double clip,
                                           double sigma, Rng& rng);

}  // namespace pdsl::dp
