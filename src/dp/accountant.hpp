#pragma once
// Privacy-loss accounting across rounds. Theorem 1 gives a per-round
// (epsilon, delta) guarantee; the accountant composes rounds so experiments
// can report total privacy spend. Both naive (linear) composition and the
// advanced composition theorem (Dwork & Roth, Thm. 3.20) are provided.

#include <cstddef>

namespace pdsl::dp {

class PrivacyAccountant {
 public:
  PrivacyAccountant() = default;

  /// Record one mechanism invocation with a per-use (epsilon, delta).
  void record(double epsilon, double delta);

  /// Record `count` identical invocations.
  void record_rounds(double epsilon, double delta, std::size_t count);

  [[nodiscard]] std::size_t num_rounds() const { return rounds_; }

  /// Basic composition: epsilons and deltas add.
  [[nodiscard]] double basic_epsilon() const { return sum_epsilon_; }
  [[nodiscard]] double basic_delta() const { return sum_delta_; }

  /// Advanced composition for k identical (eps, delta) uses with slack
  /// delta_prime: total = eps * sqrt(2k ln(1/delta')) + k*eps*(e^eps - 1),
  /// at total delta = k*delta + delta'. Only valid when all recorded rounds
  /// used identical budgets (checked).
  [[nodiscard]] double advanced_epsilon(double delta_prime) const;
  [[nodiscard]] double advanced_delta(double delta_prime) const;

  /// Tighter of basic vs advanced composition at the given slack.
  [[nodiscard]] double best_epsilon(double delta_prime) const;

 private:
  std::size_t rounds_ = 0;
  double sum_epsilon_ = 0.0;
  double sum_delta_ = 0.0;
  double per_round_epsilon_ = -1.0;  // -1 until first record; -2 if heterogeneous
  double per_round_delta_ = -1.0;
};

}  // namespace pdsl::dp
