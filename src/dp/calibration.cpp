#include "dp/calibration.hpp"

#include <cmath>
#include <stdexcept>

namespace pdsl::dp {

namespace {
void validate(const Theorem1Params& p) {
  if (p.epsilon <= 0.0) throw std::invalid_argument("theorem1: epsilon must be positive");
  if (p.delta <= 0.0 || p.delta >= 1.0) throw std::invalid_argument("theorem1: delta in (0,1)");
  if (p.clip <= 0.0) throw std::invalid_argument("theorem1: clip must be positive");
  if (p.phi_hat_min <= 0.0 || p.phi_hat_min > 1.0) {
    throw std::invalid_argument("theorem1: phi_hat_min in (0,1]");
  }
}
}  // namespace

double theorem1_sigma_for_agent(const graph::MixingMatrix& w, std::size_t agent,
                                const Theorem1Params& p) {
  validate(p);
  if (agent >= w.size()) throw std::out_of_range("theorem1_sigma_for_agent: bad agent");
  const double w_min = w.min_positive_weight();
  double inv_sum = 0.0;     // sum_j 1/w_ij over the closed neighborhood
  double inv_sq_sum = 0.0;  // sum_j w_ij^{-2}
  for (std::size_t j : w.support(agent)) {
    const double wij = w(agent, j);
    inv_sum += 1.0 / wij;
    inv_sq_sum += 1.0 / (wij * wij);
  }
  const double numerator =
      2.0 * p.clip * (1.0 / w_min + inv_sum) * std::sqrt(2.0 * std::log(1.25 / p.delta));
  const double denominator = p.phi_hat_min * p.epsilon * std::sqrt(inv_sq_sum);
  return numerator / denominator;
}

double theorem1_sigma(const graph::MixingMatrix& w, const Theorem1Params& p) {
  double mx = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    mx = std::max(mx, theorem1_sigma_for_agent(w, i, p));
  }
  return mx;
}

double theorem1_sensitivity(const graph::MixingMatrix& w, double clip) {
  if (clip <= 0.0) throw std::invalid_argument("theorem1_sensitivity: clip must be positive");
  const double w_min = w.min_positive_weight();
  double worst = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    double inv_sum = 0.0;
    for (std::size_t j : w.support(i)) inv_sum += 1.0 / w(i, j);
    worst = std::max(worst, 2.0 * clip / w_min + 2.0 * clip * inv_sum);
  }
  return worst;
}

}  // namespace pdsl::dp
