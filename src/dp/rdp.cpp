#include "dp/rdp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace pdsl::dp {

std::vector<double> RdpAccountant::default_orders() {
  std::vector<double> orders;
  for (double a = 1.25; a < 2.0; a += 0.25) orders.push_back(a);
  for (double a = 2.0; a <= 64.0; a += 1.0) orders.push_back(a);
  for (double a = 128.0; a <= 1024.0; a *= 2.0) orders.push_back(a);
  return orders;
}

RdpAccountant::RdpAccountant(std::vector<double> orders) : orders_(std::move(orders)) {
  if (orders_.empty()) throw std::invalid_argument("RdpAccountant: no orders");
  for (double a : orders_) {
    if (a <= 1.0) throw std::invalid_argument("RdpAccountant: orders must exceed 1");
  }
  rdp_.assign(orders_.size(), 0.0);
}

void RdpAccountant::add_gaussian(double noise_multiplier, std::size_t count) {
  if (noise_multiplier <= 0.0) {
    throw std::invalid_argument("RdpAccountant: noise multiplier must be positive");
  }
  const double z2 = noise_multiplier * noise_multiplier;
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += static_cast<double>(count) * orders_[i] / (2.0 * z2);
  }
  invocations_ += count;
}

void RdpAccountant::restore(std::vector<double> rdp, std::size_t invocations) {
  if (rdp.size() != orders_.size()) {
    throw std::runtime_error("RdpAccountant::restore: order-count mismatch (got " +
                             std::to_string(rdp.size()) + ", tracking " +
                             std::to_string(orders_.size()) + ")");
  }
  rdp_ = std::move(rdp);
  invocations_ = invocations;
}

double RdpAccountant::epsilon(double delta) const {
  if (delta <= 0.0 || delta >= 1.0) throw std::invalid_argument("RdpAccountant: delta in (0,1)");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    const double eps = rdp_[i] + std::log(1.0 / delta) / (orders_[i] - 1.0);
    best = std::min(best, eps);
  }
  return best;
}

double RdpAccountant::best_order(double delta) const {
  if (delta <= 0.0 || delta >= 1.0) throw std::invalid_argument("RdpAccountant: delta in (0,1)");
  double best = std::numeric_limits<double>::infinity();
  double order = orders_.front();
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    const double eps = rdp_[i] + std::log(1.0 / delta) / (orders_[i] - 1.0);
    if (eps < best) {
      best = eps;
      order = orders_[i];
    }
  }
  return order;
}

}  // namespace pdsl::dp
