#include "dp/accountant.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace pdsl::dp {

void PrivacyAccountant::record(double epsilon, double delta) {
  if (epsilon <= 0.0 || delta < 0.0 || delta >= 1.0) {
    throw std::invalid_argument("PrivacyAccountant::record: bad budget");
  }
  ++rounds_;
  sum_epsilon_ += epsilon;
  sum_delta_ += delta;
  // Running spend, observable alongside the phase metrics while a run is live.
  static obs::Counter& recorded = obs::MetricsRegistry::global().counter("dp.rounds_recorded");
  static obs::Gauge& eps_sum = obs::MetricsRegistry::global().gauge("dp.eps_basic_sum");
  recorded.add(1);
  eps_sum.set(sum_epsilon_);
  if (per_round_epsilon_ == -1.0) {
    per_round_epsilon_ = epsilon;
    per_round_delta_ = delta;
  } else if (per_round_epsilon_ != epsilon || per_round_delta_ != delta) {
    per_round_epsilon_ = -2.0;  // heterogeneous; advanced composition unavailable
  }
}

void PrivacyAccountant::record_rounds(double epsilon, double delta, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) record(epsilon, delta);
}

double PrivacyAccountant::advanced_epsilon(double delta_prime) const {
  if (delta_prime <= 0.0 || delta_prime >= 1.0) {
    throw std::invalid_argument("advanced_epsilon: delta_prime in (0,1)");
  }
  if (rounds_ == 0) return 0.0;
  if (per_round_epsilon_ < 0.0) {
    throw std::logic_error("advanced_epsilon: rounds had heterogeneous budgets");
  }
  const double k = static_cast<double>(rounds_);
  const double eps = per_round_epsilon_;
  return eps * std::sqrt(2.0 * k * std::log(1.0 / delta_prime)) +
         k * eps * (std::exp(eps) - 1.0);
}

double PrivacyAccountant::advanced_delta(double delta_prime) const {
  return sum_delta_ + delta_prime;
}

double PrivacyAccountant::best_epsilon(double delta_prime) const {
  if (rounds_ == 0) return 0.0;
  if (per_round_epsilon_ < 0.0) return basic_epsilon();
  return std::min(basic_epsilon(), advanced_epsilon(delta_prime));
}

}  // namespace pdsl::dp
