// The paper's opening motivation, measured: centralized federated learning
// (FedAvg) funnels every round through one server — a bandwidth bottleneck
// and a single point of failure — while decentralized learning (PDSL)
// spreads the same traffic across peer links. This example trains both on
// identical heterogeneous data and compares accuracy, traffic, and the
// estimated round time under a WAN link model where the server has one
// network interface but the P2P mesh transfers in parallel.

#include <cstdio>

#include "core/experiment.hpp"
#include "sim/comm_cost.hpp"

using namespace pdsl;

namespace {

core::ExperimentConfig base_config(const std::string& algorithm) {
  core::ExperimentConfig cfg;
  cfg.algorithm = algorithm;
  cfg.dataset = "mnist_like";
  cfg.model = "mlp";
  cfg.topology = "full";
  cfg.agents = 8;
  cfg.rounds = 20;
  cfg.train_samples = 900;
  cfg.test_samples = 200;
  cfg.validation_samples = 120;
  cfg.image = 10;
  cfg.mu = 0.25;
  cfg.hp.gamma = 0.05;
  cfg.hp.alpha = 0.5;
  cfg.hp.clip = 1.0;
  cfg.hp.batch = 16;
  cfg.hp.local_steps = 2;  // FedAvg local epochs
  cfg.hp.shapley_permutations = 6;
  cfg.hp.validation_batch = 32;
  cfg.epsilon = 0.3;
  cfg.sigma_mode = "dpsgd";
  cfg.noise_scale = 0.06;
  cfg.metrics.eval_every = 20;
  return cfg;
}

}  // namespace

int main() {
  std::printf("centralized (DP-FedAvg) vs decentralized (PDSL), M=8, Dir(0.25), eps=0.3\n\n");

  const auto fed = core::run_experiment(base_config("dp_fedavg"));
  const auto pdsl_res = core::run_experiment(base_config("pdsl"));

  // Traffic: FedAvg's is counted at the server (2 model transfers per agent
  // per round); PDSL's through the peer mesh.
  const std::size_t fed_messages = 2 * 8 * 20;
  const std::size_t fed_bytes = fed_messages * fed.model_dim * sizeof(float);

  // WAN link model. The server serializes all transfers through one
  // interface (parallel_links = 1); the mesh uses every agent's NIC.
  const auto server_link = sim::wan_network(1);
  const auto mesh_links = sim::wan_network(8);
  const double fed_time = server_link.transfer_time(fed_messages, fed_bytes);
  const double pdsl_time = mesh_links.transfer_time(pdsl_res.messages, pdsl_res.bytes);

  std::printf("%-22s %10s %10s %12s %12s %14s\n", "algorithm", "accuracy", "loss",
              "messages", "MB moved", "WAN time (s)");
  std::printf("%-22s %10.3f %10.4f %12zu %12.1f %14.1f\n", fed.algorithm.c_str(),
              fed.final_accuracy, fed.final_loss, fed_messages,
              static_cast<double>(fed_bytes) / 1e6, fed_time);
  std::printf("%-22s %10.3f %10.4f %12zu %12.1f %14.1f\n", pdsl_res.algorithm.c_str(),
              pdsl_res.final_accuracy, pdsl_res.final_loss, pdsl_res.messages,
              static_cast<double>(pdsl_res.bytes) / 1e6, pdsl_time);

  std::printf(
      "\nPDSL moves more total bytes (cross-gradients + double gossip) but spreads them\n"
      "across %d peer links, while every FedAvg byte serializes through the server's\n"
      "single interface — and the server is a single point of failure besides.\n",
      8);
  return 0;
}
