// Quickstart: run PDSL on a small heterogeneous workload with one call.
//
//   ./examples/quickstart
//
// Uses the declarative ExperimentConfig front door (the same entry point the
// bench harness uses). See decentralized_hospitals.cpp for the lower-level
// API where you assemble the topology / partition / Env yourself.

#include <cstdio>

#include "core/experiment.hpp"

int main() {
  pdsl::core::ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "mnist_like";  // synthetic MNIST-like images (see DESIGN.md)
  cfg.model = "mlp";
  cfg.topology = "ring";
  cfg.agents = 6;
  cfg.rounds = 20;
  cfg.train_samples = 900;
  cfg.test_samples = 200;
  cfg.validation_samples = 120;  // the shared validation set Q
  cfg.image = 10;
  cfg.mu = 0.25;                 // Dirichlet heterogeneity, as in the paper
  cfg.hp.gamma = 0.05;
  cfg.hp.alpha = 0.5;
  cfg.hp.clip = 1.0;
  cfg.hp.batch = 16;
  cfg.hp.shapley_permutations = 6;
  cfg.hp.validation_batch = 32;
  cfg.epsilon = 0.3;             // per-round privacy budget
  cfg.delta = 1e-3;
  cfg.sigma_mode = "dpsgd";
  cfg.noise_scale = 0.06;  // reduced-scale SNR compensation (see DESIGN.md)
  cfg.metrics.eval_every = 5;

  std::printf("PDSL quickstart: M=%zu ring, Dir(%.2f) heterogeneity, eps=%.2f\n", cfg.agents,
              cfg.mu, cfg.epsilon);
  const auto res = pdsl::core::run_experiment(cfg);

  std::printf("model dim d=%zu, noise sigma=%.4f, heterogeneity index=%.3f, rho=%.3f\n",
              res.model_dim, res.sigma, res.heterogeneity, res.spectral.rho);
  std::printf("%6s %10s %10s %12s\n", "round", "avg_loss", "test_acc", "consensus");
  for (const auto& m : res.series) {
    if (m.round % 5 == 0 || m.round == 1) {
      std::printf("%6zu %10.4f %10.3f %12.5f\n", m.round, m.avg_loss, m.test_accuracy,
                  m.consensus);
    }
  }
  std::printf("final: loss=%.4f accuracy=%.3f messages=%zu (%.1f MB)\n", res.final_loss,
              res.final_accuracy, res.messages, static_cast<double>(res.bytes) / 1e6);
  return 0;
}
