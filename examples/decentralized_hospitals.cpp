// Domain scenario: a consortium of hospitals trains a shared diagnostic
// model without a coordinating server and without revealing patient data.
//
// This example uses the *assembly-level* API: you build the dataset shards,
// the communication graph, the mixing matrix and the Env yourself, then drive
// core::Pdsl round by round. It also shows the observability hooks: per-round
// Shapley values act as a contribution audit across sites, and the privacy
// accountant tracks the cumulative (epsilon, delta) spend.
//
// The data is synthetic (class-skewed images standing in for per-site
// disease mixes): each hospital sees a very different case mix, which is
// exactly the heterogeneity PDSL targets.

#include <cstdio>

#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "dp/accountant.hpp"
#include "dp/mechanism.hpp"
#include "nn/model_zoo.hpp"
#include "sim/evaluate.hpp"

using namespace pdsl;

int main() {
  constexpr std::size_t kHospitals = 5;
  constexpr std::size_t kRounds = 15;
  constexpr double kEpsilonPerRound = 0.3;
  constexpr double kDelta = 1e-3;

  // 1. Data: one pool of "cases", split into per-hospital shards with a very
  // skewed Dir(0.1) case mix, plus a shared validation registry Q and a
  // held-out test registry.
  Rng rng(2026);
  auto pool = data::make_synthetic_images(data::mnist_like_spec(1400, 10, 77));
  auto [rest, test] = data::split_off(pool, 250, rng);
  auto [train, validation] = data::split_off(rest, 150, rng);

  data::PartitionOptions popts;
  popts.mu = 0.1;  // strongly skewed case mix
  auto partition = data::dirichlet_partition(train, kHospitals, popts, rng);
  const auto dists = data::label_distributions(train, partition, train.num_classes());
  std::printf("case-mix heterogeneity (mean pairwise TV): %.3f\n",
              data::heterogeneity_index(dists));

  // 2. Communication: hospitals are connected in a ring (regional peering).
  const auto topo = graph::Topology::make(graph::TopologyKind::kRing, kHospitals);
  const auto mixing = graph::MixingMatrix::metropolis(topo);

  // 3. Model + privacy calibration: per-round Gaussian mechanism on clipped
  // mini-batch gradients.
  const nn::Model model = nn::make_mlp(100, 32, 10);
  algos::Env env;
  env.topo = &topo;
  env.mixing = &mixing;
  env.train = &train;
  env.validation = &validation;
  env.model_template = &model;
  env.partition = &partition;
  env.hp.gamma = 0.05;
  env.hp.alpha = 0.5;
  env.hp.clip = 1.0;
  env.hp.batch = 16;
  // Gaussian-mechanism sigma for the per-round budget, scaled down for the
  // reduced problem size exactly as the bench harness does (DESIGN.md,
  // "Noise level at reduced scale").
  env.hp.sigma =
      0.06 * dp::gaussian_sigma(2.0 * env.hp.clip / env.hp.batch, kEpsilonPerRound, kDelta);
  env.hp.shapley_permutations = 6;
  env.hp.validation_batch = 40;
  env.seed = 11;

  std::printf("hospitals=%zu ring, sigma=%.4f (eps=%.2f/round, delta=%.0e)\n\n", kHospitals,
              env.hp.sigma, kEpsilonPerRound, kDelta);

  // 4. Train, auditing contributions and privacy spend as we go.
  core::Pdsl alg(env);
  dp::PrivacyAccountant accountant;
  nn::Model eval_ws = model;

  for (std::size_t t = 1; t <= kRounds; ++t) {
    alg.run_round(t);
    accountant.record(kEpsilonPerRound, kDelta);
    if (t % 5 == 0 || t == 1) {
      double loss = 0.0;
      for (std::size_t h = 0; h < kHospitals; ++h) {
        loss += alg.worker(h).local_eval_loss(alg.models()[h]);
      }
      std::printf("round %2zu: avg local loss %.4f | hospital 0 sees contributions:", t,
                  loss / kHospitals);
      for (double phi : alg.last_shapley()[0]) std::printf(" %+.3f", phi);
      std::printf("\n");
    }
  }

  // 5. Final report: per-hospital accuracy on the shared test registry.
  std::printf("\nper-hospital test accuracy:");
  double mean_acc = 0.0;
  for (std::size_t h = 0; h < kHospitals; ++h) {
    const double acc = sim::evaluate(eval_ws, alg.models()[h], test, 250).accuracy;
    mean_acc += acc;
    std::printf(" %.3f", acc);
  }
  std::printf("  (mean %.3f)\n", mean_acc / kHospitals);
  std::printf("privacy spend after %zu rounds: basic eps=%.2f, advanced eps=%.2f (delta'=%g)\n",
              accountant.num_rounds(), accountant.basic_epsilon(),
              accountant.advanced_epsilon(1e-4), 1e-4);
  std::printf("network: %zu messages, %.1f MB\n", alg.network().messages_sent(),
              static_cast<double>(alg.network().bytes_sent()) / 1e6);
  return 0;
}
