// Domain scenario: picking a communication topology for an edge deployment.
// Runs PDSL over the paper's three graphs plus star and torus, reporting the
// spectral gap (Assumption 3's rho), communication volume, and accuracy —
// the dense-vs-sparse tradeoff the paper's Figs. 1-3 explore, extended to
// graphs the paper does not cover.

#include <cstdio>

#include "core/experiment.hpp"
#include "sim/comm_cost.hpp"

using namespace pdsl;

int main() {
  constexpr std::size_t kAgents = 9;  // 9 = 3x3 so the torus is valid
  constexpr std::size_t kRounds = 18;

  std::printf("topology study: PDSL, M=%zu, Dir(0.25), eps=0.3, %zu rounds\n\n", kAgents,
              kRounds);
  std::printf("%-12s %8s %8s %10s %10s %10s %10s %12s\n", "topology", "rho", "gap", "loss",
              "accuracy", "messages", "MB", "WAN time(s)");

  for (const std::string topo : {"full", "bipartite", "torus", "ring", "star"}) {
    core::ExperimentConfig cfg;
    cfg.algorithm = "pdsl";
    cfg.dataset = "mnist_like";
    cfg.model = "mlp";
    cfg.topology = topo;
    cfg.agents = kAgents;
    cfg.rounds = kRounds;
    cfg.train_samples = 900;
    cfg.test_samples = 200;
    cfg.validation_samples = 120;
    cfg.image = 10;
    cfg.hp.gamma = 0.05;
    cfg.hp.alpha = 0.5;
    cfg.hp.clip = 1.0;
    cfg.hp.batch = 16;
    cfg.hp.shapley_permutations = 6;
    cfg.hp.validation_batch = 32;
    cfg.epsilon = 0.3;
    cfg.sigma_mode = "dpsgd";
    cfg.noise_scale = 0.06;  // reduced-scale SNR compensation (see DESIGN.md)
    cfg.metrics.eval_every = kRounds;

    const auto res = core::run_experiment(cfg);
    // Estimated wall-clock under a WAN link model: each agent has one NIC,
    // so up to M transfers proceed in parallel.
    const auto wan = sim::wan_network(kAgents);
    const double est_time = wan.transfer_time(res.messages, res.bytes);
    std::printf("%-12s %8.4f %8.4f %10.4f %10.3f %10zu %10.1f %12.1f\n", topo.c_str(),
                res.spectral.rho, res.spectral.spectral_gap, res.final_loss,
                res.final_accuracy, res.messages, static_cast<double>(res.bytes) / 1e6,
                est_time);
  }
  std::printf("\ndenser graphs (smaller rho) buy faster consensus at higher message cost.\n");
  return 0;
}
