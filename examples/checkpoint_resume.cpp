// Example: checkpointing a decentralized run. Trains PDSL for a few rounds,
// persists the whole fleet (every agent's model) with checksummed binary
// checkpoints, simulates a crash, restores the fleet into a *fresh*
// algorithm instance, and continues training. Demonstrates io::save_fleet /
// load_fleet plus warm-starting via Algorithm model state.

#include <cstdio>

#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "io/checkpoint.hpp"
#include "nn/model_zoo.hpp"
#include "sim/evaluate.hpp"

using namespace pdsl;

namespace {

algos::Env make_env(const graph::Topology& topo, const graph::MixingMatrix& mixing,
                    const data::Dataset& train, const data::Dataset& validation,
                    const nn::Model& model,
                    const std::vector<std::vector<std::size_t>>& partition) {
  algos::Env env;
  env.topo = &topo;
  env.mixing = &mixing;
  env.train = &train;
  env.validation = &validation;
  env.model_template = &model;
  env.partition = &partition;
  env.hp.gamma = 0.05;
  env.hp.alpha = 0.5;
  env.hp.clip = 1.0;
  env.hp.sigma = 0.05;
  env.hp.batch = 16;
  env.hp.shapley_permutations = 6;
  env.hp.validation_batch = 32;
  env.seed = 9;
  return env;
}

double mean_accuracy(nn::Model ws, const std::vector<std::vector<float>>& models,
                     const data::Dataset& test) {
  double acc = 0.0;
  for (const auto& x : models) acc += sim::evaluate(ws, x, test, 200).accuracy;
  return acc / static_cast<double>(models.size());
}

}  // namespace

int main() {
  constexpr const char* kCheckpoint = "/tmp/pdsl_fleet_checkpoint.bin";

  Rng rng(4);
  auto pool = data::make_synthetic_images(data::mnist_like_spec(1200, 10, 5));
  auto [rest, test] = data::split_off(pool, 200, rng);
  auto [train, validation] = data::split_off(rest, 150, rng);
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 5);
  const auto mixing = graph::MixingMatrix::metropolis(topo);
  const nn::Model model = nn::make_mlp(100, 32, 10);
  data::PartitionOptions popts;
  popts.mu = 0.25;
  const auto partition = data::dirichlet_partition(train, 5, popts, rng);
  const auto env = make_env(topo, mixing, train, validation, model, partition);

  // Phase 1: train 10 rounds, checkpoint the fleet.
  core::Pdsl first(env);
  for (std::size_t t = 1; t <= 10; ++t) first.run_round(t);
  io::save_fleet(kCheckpoint, first.models().dense());
  const double acc_at_checkpoint = mean_accuracy(model, first.models().dense(), test);
  std::printf("round 10 checkpointed: mean accuracy %.3f -> %s\n", acc_at_checkpoint,
              kCheckpoint);

  // Phase 2: "crash"; restore into a brand-new instance and keep going.
  core::Pdsl resumed(env);
  resumed.set_models(io::load_fleet(kCheckpoint));
  const double acc_restored = mean_accuracy(model, resumed.models().dense(), test);
  std::printf("restored fleet: mean accuracy %.3f (matches checkpoint: %s)\n", acc_restored,
              acc_restored == acc_at_checkpoint ? "yes" : "NO");

  for (std::size_t t = 11; t <= 20; ++t) resumed.run_round(t);
  std::printf("after resume to round 20: mean accuracy %.3f\n",
              mean_accuracy(model, resumed.models().dense(), test));
  return 0;
}
