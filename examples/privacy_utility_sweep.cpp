// Domain scenario: choosing a privacy budget. Sweeps epsilon and reports the
// privacy/utility frontier for PDSL against DP-DPSGD: noise level, final
// loss, test accuracy, and the total privacy spend after T rounds under both
// basic and advanced composition. This mirrors the decision a deployment
// actually faces: "how much accuracy does eps=0.1 cost versus eps=0.3?".

#include <cstdio>

#include "core/experiment.hpp"
#include "dp/accountant.hpp"

using namespace pdsl;

int main() {
  const std::vector<double> epsilons = {0.05, 0.1, 0.3, 1.0};
  constexpr std::size_t kRounds = 20;
  constexpr double kDelta = 1e-3;

  std::printf("privacy/utility sweep: M=6 fully connected, Dir(0.25), %zu rounds\n\n", kRounds);
  std::printf("%6s %12s %10s %10s | %10s %10s | %12s %12s\n", "eps", "algorithm", "sigma",
              "loss", "accuracy", "vs eps=inf", "total basic", "total adv");

  // Non-private reference for the "utility ceiling" column.
  auto base_cfg = [&](const std::string& alg, double eps) {
    core::ExperimentConfig cfg;
    cfg.algorithm = alg;
    cfg.dataset = "mnist_like";
    cfg.model = "mlp";
    cfg.topology = "full";
    cfg.agents = 6;
    cfg.rounds = kRounds;
    cfg.train_samples = 900;
    cfg.test_samples = 200;
    cfg.validation_samples = 120;
    cfg.image = 10;
    cfg.hp.gamma = 0.05;
    cfg.hp.alpha = 0.5;
    cfg.hp.clip = 1.0;
    cfg.hp.batch = 16;
    cfg.hp.shapley_permutations = 6;
    cfg.hp.validation_batch = 32;
    cfg.epsilon = eps;
    cfg.delta = kDelta;
    cfg.sigma_mode = "dpsgd";
    cfg.noise_scale = 0.06;  // reduced-scale SNR compensation (see DESIGN.md)
    cfg.metrics.eval_every = kRounds;
    return cfg;
  };

  auto ceiling_cfg = base_cfg("pdsl", 1.0);
  ceiling_cfg.sigma_mode = "none";
  const double ceiling = core::run_experiment(ceiling_cfg).final_accuracy;

  for (const double eps : epsilons) {
    for (const std::string alg : {"pdsl", "dp_dpsgd"}) {
      const auto res = core::run_experiment(base_cfg(alg, eps));
      dp::PrivacyAccountant acc;
      acc.record_rounds(eps, kDelta, kRounds);
      std::printf("%6.2f %12s %10.4f %10.4f | %10.3f %+10.3f | %12.2f %12.2f\n", eps,
                  res.algorithm.c_str(), res.sigma, res.final_loss, res.final_accuracy,
                  res.final_accuracy - ceiling, acc.basic_epsilon(),
                  acc.advanced_epsilon(1e-4));
    }
  }
  std::printf("\nnon-private PDSL ceiling accuracy: %.3f\n", ceiling);
  return 0;
}
