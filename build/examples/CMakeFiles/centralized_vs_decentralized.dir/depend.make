# Empty dependencies file for centralized_vs_decentralized.
# This may be replaced when dependencies are built.
