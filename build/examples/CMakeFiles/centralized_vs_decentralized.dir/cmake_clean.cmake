file(REMOVE_RECURSE
  "CMakeFiles/centralized_vs_decentralized.dir/centralized_vs_decentralized.cpp.o"
  "CMakeFiles/centralized_vs_decentralized.dir/centralized_vs_decentralized.cpp.o.d"
  "centralized_vs_decentralized"
  "centralized_vs_decentralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centralized_vs_decentralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
