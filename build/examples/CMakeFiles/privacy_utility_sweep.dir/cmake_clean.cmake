file(REMOVE_RECURSE
  "CMakeFiles/privacy_utility_sweep.dir/privacy_utility_sweep.cpp.o"
  "CMakeFiles/privacy_utility_sweep.dir/privacy_utility_sweep.cpp.o.d"
  "privacy_utility_sweep"
  "privacy_utility_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_utility_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
