# Empty dependencies file for privacy_utility_sweep.
# This may be replaced when dependencies are built.
