# Empty dependencies file for topology_study.
# This may be replaced when dependencies are built.
