file(REMOVE_RECURSE
  "CMakeFiles/topology_study.dir/topology_study.cpp.o"
  "CMakeFiles/topology_study.dir/topology_study.cpp.o.d"
  "topology_study"
  "topology_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
