# Empty compiler generated dependencies file for decentralized_hospitals.
# This may be replaced when dependencies are built.
