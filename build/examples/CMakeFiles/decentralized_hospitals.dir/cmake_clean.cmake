file(REMOVE_RECURSE
  "CMakeFiles/decentralized_hospitals.dir/decentralized_hospitals.cpp.o"
  "CMakeFiles/decentralized_hospitals.dir/decentralized_hospitals.cpp.o.d"
  "decentralized_hospitals"
  "decentralized_hospitals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentralized_hospitals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
