# Empty compiler generated dependencies file for bench_fig1_mnist_full.
# This may be replaced when dependencies are built.
