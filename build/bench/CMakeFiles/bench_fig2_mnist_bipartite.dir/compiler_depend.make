# Empty compiler generated dependencies file for bench_fig2_mnist_bipartite.
# This may be replaced when dependencies are built.
