# Empty dependencies file for bench_privacy_attack.
# This may be replaced when dependencies are built.
