file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy_attack.dir/bench_privacy_attack.cpp.o"
  "CMakeFiles/bench_privacy_attack.dir/bench_privacy_attack.cpp.o.d"
  "CMakeFiles/bench_privacy_attack.dir/bench_util.cpp.o"
  "CMakeFiles/bench_privacy_attack.dir/bench_util.cpp.o.d"
  "bench_privacy_attack"
  "bench_privacy_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
