# Empty dependencies file for bench_fig3_mnist_ring.
# This may be replaced when dependencies are built.
