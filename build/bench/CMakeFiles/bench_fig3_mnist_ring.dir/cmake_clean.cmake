file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mnist_ring.dir/bench_fig3_mnist_ring.cpp.o"
  "CMakeFiles/bench_fig3_mnist_ring.dir/bench_fig3_mnist_ring.cpp.o.d"
  "CMakeFiles/bench_fig3_mnist_ring.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig3_mnist_ring.dir/bench_util.cpp.o.d"
  "bench_fig3_mnist_ring"
  "bench_fig3_mnist_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mnist_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
