# Empty dependencies file for bench_ablation_shapley.
# This may be replaced when dependencies are built.
