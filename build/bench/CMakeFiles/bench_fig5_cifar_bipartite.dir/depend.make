# Empty dependencies file for bench_fig5_cifar_bipartite.
# This may be replaced when dependencies are built.
