file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cifar_bipartite.dir/bench_fig5_cifar_bipartite.cpp.o"
  "CMakeFiles/bench_fig5_cifar_bipartite.dir/bench_fig5_cifar_bipartite.cpp.o.d"
  "CMakeFiles/bench_fig5_cifar_bipartite.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig5_cifar_bipartite.dir/bench_util.cpp.o.d"
  "bench_fig5_cifar_bipartite"
  "bench_fig5_cifar_bipartite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cifar_bipartite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
