# Empty compiler generated dependencies file for bench_ablation_sigma.
# This may be replaced when dependencies are built.
