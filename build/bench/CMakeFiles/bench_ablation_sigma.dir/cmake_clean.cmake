file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sigma.dir/bench_ablation_sigma.cpp.o"
  "CMakeFiles/bench_ablation_sigma.dir/bench_ablation_sigma.cpp.o.d"
  "CMakeFiles/bench_ablation_sigma.dir/bench_util.cpp.o"
  "CMakeFiles/bench_ablation_sigma.dir/bench_util.cpp.o.d"
  "bench_ablation_sigma"
  "bench_ablation_sigma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sigma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
