file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cifar_full.dir/bench_fig4_cifar_full.cpp.o"
  "CMakeFiles/bench_fig4_cifar_full.dir/bench_fig4_cifar_full.cpp.o.d"
  "CMakeFiles/bench_fig4_cifar_full.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig4_cifar_full.dir/bench_util.cpp.o.d"
  "bench_fig4_cifar_full"
  "bench_fig4_cifar_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cifar_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
