file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cifar_ring.dir/bench_fig6_cifar_ring.cpp.o"
  "CMakeFiles/bench_fig6_cifar_ring.dir/bench_fig6_cifar_ring.cpp.o.d"
  "CMakeFiles/bench_fig6_cifar_ring.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig6_cifar_ring.dir/bench_util.cpp.o.d"
  "bench_fig6_cifar_ring"
  "bench_fig6_cifar_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cifar_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
