# Empty compiler generated dependencies file for bench_fig6_cifar_ring.
# This may be replaced when dependencies are built.
