# Empty compiler generated dependencies file for bench_extended_algorithms.
# This may be replaced when dependencies are built.
