file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_algorithms.dir/bench_extended_algorithms.cpp.o"
  "CMakeFiles/bench_extended_algorithms.dir/bench_extended_algorithms.cpp.o.d"
  "CMakeFiles/bench_extended_algorithms.dir/bench_util.cpp.o"
  "CMakeFiles/bench_extended_algorithms.dir/bench_util.cpp.o.d"
  "bench_extended_algorithms"
  "bench_extended_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
