file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mnist_accuracy.dir/bench_table1_mnist_accuracy.cpp.o"
  "CMakeFiles/bench_table1_mnist_accuracy.dir/bench_table1_mnist_accuracy.cpp.o.d"
  "CMakeFiles/bench_table1_mnist_accuracy.dir/bench_util.cpp.o"
  "CMakeFiles/bench_table1_mnist_accuracy.dir/bench_util.cpp.o.d"
  "bench_table1_mnist_accuracy"
  "bench_table1_mnist_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mnist_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
