# Empty compiler generated dependencies file for bench_table1_mnist_accuracy.
# This may be replaced when dependencies are built.
