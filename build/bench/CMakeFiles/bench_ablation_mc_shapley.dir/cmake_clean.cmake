file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mc_shapley.dir/bench_ablation_mc_shapley.cpp.o"
  "CMakeFiles/bench_ablation_mc_shapley.dir/bench_ablation_mc_shapley.cpp.o.d"
  "CMakeFiles/bench_ablation_mc_shapley.dir/bench_util.cpp.o"
  "CMakeFiles/bench_ablation_mc_shapley.dir/bench_util.cpp.o.d"
  "bench_ablation_mc_shapley"
  "bench_ablation_mc_shapley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mc_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
