# Empty dependencies file for bench_ablation_mc_shapley.
# This may be replaced when dependencies are built.
