# Empty dependencies file for bench_table2_cifar_accuracy.
# This may be replaced when dependencies are built.
