# Empty compiler generated dependencies file for pdsl_cli.
# This may be replaced when dependencies are built.
