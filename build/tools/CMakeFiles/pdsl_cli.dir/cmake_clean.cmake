file(REMOVE_RECURSE
  "CMakeFiles/pdsl_cli.dir/pdsl_cli.cpp.o"
  "CMakeFiles/pdsl_cli.dir/pdsl_cli.cpp.o.d"
  "pdsl_cli"
  "pdsl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
