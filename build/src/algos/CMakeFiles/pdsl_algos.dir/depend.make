# Empty dependencies file for pdsl_algos.
# This may be replaced when dependencies are built.
