file(REMOVE_RECURSE
  "libpdsl_algos.a"
)
