
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/async_gossip.cpp" "src/algos/CMakeFiles/pdsl_algos.dir/async_gossip.cpp.o" "gcc" "src/algos/CMakeFiles/pdsl_algos.dir/async_gossip.cpp.o.d"
  "/root/repo/src/algos/common.cpp" "src/algos/CMakeFiles/pdsl_algos.dir/common.cpp.o" "gcc" "src/algos/CMakeFiles/pdsl_algos.dir/common.cpp.o.d"
  "/root/repo/src/algos/dp_cga.cpp" "src/algos/CMakeFiles/pdsl_algos.dir/dp_cga.cpp.o" "gcc" "src/algos/CMakeFiles/pdsl_algos.dir/dp_cga.cpp.o.d"
  "/root/repo/src/algos/dp_dpsgd.cpp" "src/algos/CMakeFiles/pdsl_algos.dir/dp_dpsgd.cpp.o" "gcc" "src/algos/CMakeFiles/pdsl_algos.dir/dp_dpsgd.cpp.o.d"
  "/root/repo/src/algos/dp_netfleet.cpp" "src/algos/CMakeFiles/pdsl_algos.dir/dp_netfleet.cpp.o" "gcc" "src/algos/CMakeFiles/pdsl_algos.dir/dp_netfleet.cpp.o.d"
  "/root/repo/src/algos/dpsgd.cpp" "src/algos/CMakeFiles/pdsl_algos.dir/dpsgd.cpp.o" "gcc" "src/algos/CMakeFiles/pdsl_algos.dir/dpsgd.cpp.o.d"
  "/root/repo/src/algos/fedavg.cpp" "src/algos/CMakeFiles/pdsl_algos.dir/fedavg.cpp.o" "gcc" "src/algos/CMakeFiles/pdsl_algos.dir/fedavg.cpp.o.d"
  "/root/repo/src/algos/muffliato.cpp" "src/algos/CMakeFiles/pdsl_algos.dir/muffliato.cpp.o" "gcc" "src/algos/CMakeFiles/pdsl_algos.dir/muffliato.cpp.o.d"
  "/root/repo/src/algos/qgm.cpp" "src/algos/CMakeFiles/pdsl_algos.dir/qgm.cpp.o" "gcc" "src/algos/CMakeFiles/pdsl_algos.dir/qgm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pdsl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/pdsl_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/pdsl_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/shapley/CMakeFiles/pdsl_shapley.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pdsl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pdsl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pdsl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/pdsl_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pdsl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdsl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
