file(REMOVE_RECURSE
  "CMakeFiles/pdsl_algos.dir/async_gossip.cpp.o"
  "CMakeFiles/pdsl_algos.dir/async_gossip.cpp.o.d"
  "CMakeFiles/pdsl_algos.dir/common.cpp.o"
  "CMakeFiles/pdsl_algos.dir/common.cpp.o.d"
  "CMakeFiles/pdsl_algos.dir/dp_cga.cpp.o"
  "CMakeFiles/pdsl_algos.dir/dp_cga.cpp.o.d"
  "CMakeFiles/pdsl_algos.dir/dp_dpsgd.cpp.o"
  "CMakeFiles/pdsl_algos.dir/dp_dpsgd.cpp.o.d"
  "CMakeFiles/pdsl_algos.dir/dp_netfleet.cpp.o"
  "CMakeFiles/pdsl_algos.dir/dp_netfleet.cpp.o.d"
  "CMakeFiles/pdsl_algos.dir/dpsgd.cpp.o"
  "CMakeFiles/pdsl_algos.dir/dpsgd.cpp.o.d"
  "CMakeFiles/pdsl_algos.dir/fedavg.cpp.o"
  "CMakeFiles/pdsl_algos.dir/fedavg.cpp.o.d"
  "CMakeFiles/pdsl_algos.dir/muffliato.cpp.o"
  "CMakeFiles/pdsl_algos.dir/muffliato.cpp.o.d"
  "CMakeFiles/pdsl_algos.dir/qgm.cpp.o"
  "CMakeFiles/pdsl_algos.dir/qgm.cpp.o.d"
  "libpdsl_algos.a"
  "libpdsl_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
