file(REMOVE_RECURSE
  "libpdsl_common.a"
)
