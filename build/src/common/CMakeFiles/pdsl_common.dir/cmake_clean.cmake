file(REMOVE_RECURSE
  "CMakeFiles/pdsl_common.dir/cli.cpp.o"
  "CMakeFiles/pdsl_common.dir/cli.cpp.o.d"
  "CMakeFiles/pdsl_common.dir/csv.cpp.o"
  "CMakeFiles/pdsl_common.dir/csv.cpp.o.d"
  "CMakeFiles/pdsl_common.dir/json.cpp.o"
  "CMakeFiles/pdsl_common.dir/json.cpp.o.d"
  "CMakeFiles/pdsl_common.dir/logging.cpp.o"
  "CMakeFiles/pdsl_common.dir/logging.cpp.o.d"
  "CMakeFiles/pdsl_common.dir/rng.cpp.o"
  "CMakeFiles/pdsl_common.dir/rng.cpp.o.d"
  "libpdsl_common.a"
  "libpdsl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
