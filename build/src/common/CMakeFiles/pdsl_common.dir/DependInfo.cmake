
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cli.cpp" "src/common/CMakeFiles/pdsl_common.dir/cli.cpp.o" "gcc" "src/common/CMakeFiles/pdsl_common.dir/cli.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/common/CMakeFiles/pdsl_common.dir/csv.cpp.o" "gcc" "src/common/CMakeFiles/pdsl_common.dir/csv.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/common/CMakeFiles/pdsl_common.dir/json.cpp.o" "gcc" "src/common/CMakeFiles/pdsl_common.dir/json.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/pdsl_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/pdsl_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/pdsl_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/pdsl_common.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
