# Empty dependencies file for pdsl_common.
# This may be replaced when dependencies are built.
