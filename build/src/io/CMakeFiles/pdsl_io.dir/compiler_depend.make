# Empty compiler generated dependencies file for pdsl_io.
# This may be replaced when dependencies are built.
