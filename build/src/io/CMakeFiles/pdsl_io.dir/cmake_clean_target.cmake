file(REMOVE_RECURSE
  "libpdsl_io.a"
)
