file(REMOVE_RECURSE
  "CMakeFiles/pdsl_io.dir/checkpoint.cpp.o"
  "CMakeFiles/pdsl_io.dir/checkpoint.cpp.o.d"
  "libpdsl_io.a"
  "libpdsl_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
