# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("nn")
subdirs("data")
subdirs("graph")
subdirs("compress")
subdirs("io")
subdirs("dp")
subdirs("optim")
subdirs("shapley")
subdirs("sim")
subdirs("attack")
subdirs("algos")
subdirs("core")
