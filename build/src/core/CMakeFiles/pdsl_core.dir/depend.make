# Empty dependencies file for pdsl_core.
# This may be replaced when dependencies are built.
