file(REMOVE_RECURSE
  "libpdsl_core.a"
)
