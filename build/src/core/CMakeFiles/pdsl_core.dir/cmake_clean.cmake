file(REMOVE_RECURSE
  "CMakeFiles/pdsl_core.dir/config_io.cpp.o"
  "CMakeFiles/pdsl_core.dir/config_io.cpp.o.d"
  "CMakeFiles/pdsl_core.dir/experiment.cpp.o"
  "CMakeFiles/pdsl_core.dir/experiment.cpp.o.d"
  "CMakeFiles/pdsl_core.dir/pdsl.cpp.o"
  "CMakeFiles/pdsl_core.dir/pdsl.cpp.o.d"
  "CMakeFiles/pdsl_core.dir/replicate.cpp.o"
  "CMakeFiles/pdsl_core.dir/replicate.cpp.o.d"
  "libpdsl_core.a"
  "libpdsl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
