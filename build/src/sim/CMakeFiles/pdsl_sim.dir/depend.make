# Empty dependencies file for pdsl_sim.
# This may be replaced when dependencies are built.
