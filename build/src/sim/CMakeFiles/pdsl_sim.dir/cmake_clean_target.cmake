file(REMOVE_RECURSE
  "libpdsl_sim.a"
)
