file(REMOVE_RECURSE
  "CMakeFiles/pdsl_sim.dir/comm_cost.cpp.o"
  "CMakeFiles/pdsl_sim.dir/comm_cost.cpp.o.d"
  "CMakeFiles/pdsl_sim.dir/evaluate.cpp.o"
  "CMakeFiles/pdsl_sim.dir/evaluate.cpp.o.d"
  "CMakeFiles/pdsl_sim.dir/metrics.cpp.o"
  "CMakeFiles/pdsl_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/pdsl_sim.dir/network.cpp.o"
  "CMakeFiles/pdsl_sim.dir/network.cpp.o.d"
  "CMakeFiles/pdsl_sim.dir/worker.cpp.o"
  "CMakeFiles/pdsl_sim.dir/worker.cpp.o.d"
  "libpdsl_sim.a"
  "libpdsl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
