
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/comm_cost.cpp" "src/sim/CMakeFiles/pdsl_sim.dir/comm_cost.cpp.o" "gcc" "src/sim/CMakeFiles/pdsl_sim.dir/comm_cost.cpp.o.d"
  "/root/repo/src/sim/evaluate.cpp" "src/sim/CMakeFiles/pdsl_sim.dir/evaluate.cpp.o" "gcc" "src/sim/CMakeFiles/pdsl_sim.dir/evaluate.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/pdsl_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/pdsl_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/pdsl_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/pdsl_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/worker.cpp" "src/sim/CMakeFiles/pdsl_sim.dir/worker.cpp.o" "gcc" "src/sim/CMakeFiles/pdsl_sim.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdsl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pdsl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pdsl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pdsl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/pdsl_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pdsl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
