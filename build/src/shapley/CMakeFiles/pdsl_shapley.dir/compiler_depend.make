# Empty compiler generated dependencies file for pdsl_shapley.
# This may be replaced when dependencies are built.
