
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shapley/game.cpp" "src/shapley/CMakeFiles/pdsl_shapley.dir/game.cpp.o" "gcc" "src/shapley/CMakeFiles/pdsl_shapley.dir/game.cpp.o.d"
  "/root/repo/src/shapley/shapley.cpp" "src/shapley/CMakeFiles/pdsl_shapley.dir/shapley.cpp.o" "gcc" "src/shapley/CMakeFiles/pdsl_shapley.dir/shapley.cpp.o.d"
  "/root/repo/src/shapley/weighting.cpp" "src/shapley/CMakeFiles/pdsl_shapley.dir/weighting.cpp.o" "gcc" "src/shapley/CMakeFiles/pdsl_shapley.dir/weighting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdsl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
