file(REMOVE_RECURSE
  "libpdsl_shapley.a"
)
