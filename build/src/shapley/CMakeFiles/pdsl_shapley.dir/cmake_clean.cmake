file(REMOVE_RECURSE
  "CMakeFiles/pdsl_shapley.dir/game.cpp.o"
  "CMakeFiles/pdsl_shapley.dir/game.cpp.o.d"
  "CMakeFiles/pdsl_shapley.dir/shapley.cpp.o"
  "CMakeFiles/pdsl_shapley.dir/shapley.cpp.o.d"
  "CMakeFiles/pdsl_shapley.dir/weighting.cpp.o"
  "CMakeFiles/pdsl_shapley.dir/weighting.cpp.o.d"
  "libpdsl_shapley.a"
  "libpdsl_shapley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
