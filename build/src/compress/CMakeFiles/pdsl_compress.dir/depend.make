# Empty dependencies file for pdsl_compress.
# This may be replaced when dependencies are built.
