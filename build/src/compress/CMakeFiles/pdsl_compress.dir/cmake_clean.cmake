file(REMOVE_RECURSE
  "CMakeFiles/pdsl_compress.dir/compressor.cpp.o"
  "CMakeFiles/pdsl_compress.dir/compressor.cpp.o.d"
  "libpdsl_compress.a"
  "libpdsl_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
