file(REMOVE_RECURSE
  "libpdsl_compress.a"
)
