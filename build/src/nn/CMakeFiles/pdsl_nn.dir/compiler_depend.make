# Empty compiler generated dependencies file for pdsl_nn.
# This may be replaced when dependencies are built.
