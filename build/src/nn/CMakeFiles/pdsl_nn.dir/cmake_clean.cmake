file(REMOVE_RECURSE
  "CMakeFiles/pdsl_nn.dir/activations.cpp.o"
  "CMakeFiles/pdsl_nn.dir/activations.cpp.o.d"
  "CMakeFiles/pdsl_nn.dir/conv2d.cpp.o"
  "CMakeFiles/pdsl_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/pdsl_nn.dir/dropout.cpp.o"
  "CMakeFiles/pdsl_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/pdsl_nn.dir/flatten.cpp.o"
  "CMakeFiles/pdsl_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/pdsl_nn.dir/layer.cpp.o"
  "CMakeFiles/pdsl_nn.dir/layer.cpp.o.d"
  "CMakeFiles/pdsl_nn.dir/layernorm.cpp.o"
  "CMakeFiles/pdsl_nn.dir/layernorm.cpp.o.d"
  "CMakeFiles/pdsl_nn.dir/linear.cpp.o"
  "CMakeFiles/pdsl_nn.dir/linear.cpp.o.d"
  "CMakeFiles/pdsl_nn.dir/loss.cpp.o"
  "CMakeFiles/pdsl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/pdsl_nn.dir/model.cpp.o"
  "CMakeFiles/pdsl_nn.dir/model.cpp.o.d"
  "CMakeFiles/pdsl_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/pdsl_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/pdsl_nn.dir/pooling.cpp.o"
  "CMakeFiles/pdsl_nn.dir/pooling.cpp.o.d"
  "libpdsl_nn.a"
  "libpdsl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
