file(REMOVE_RECURSE
  "libpdsl_nn.a"
)
