
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/flatten.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/flatten.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/layernorm.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/layernorm.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/layernorm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/model_zoo.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/pdsl_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/pdsl_nn.dir/pooling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pdsl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdsl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
