# Empty compiler generated dependencies file for pdsl_data.
# This may be replaced when dependencies are built.
