file(REMOVE_RECURSE
  "CMakeFiles/pdsl_data.dir/dataset.cpp.o"
  "CMakeFiles/pdsl_data.dir/dataset.cpp.o.d"
  "CMakeFiles/pdsl_data.dir/partition.cpp.o"
  "CMakeFiles/pdsl_data.dir/partition.cpp.o.d"
  "CMakeFiles/pdsl_data.dir/sampler.cpp.o"
  "CMakeFiles/pdsl_data.dir/sampler.cpp.o.d"
  "CMakeFiles/pdsl_data.dir/synthetic.cpp.o"
  "CMakeFiles/pdsl_data.dir/synthetic.cpp.o.d"
  "libpdsl_data.a"
  "libpdsl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
