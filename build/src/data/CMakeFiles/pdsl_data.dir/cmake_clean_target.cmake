file(REMOVE_RECURSE
  "libpdsl_data.a"
)
