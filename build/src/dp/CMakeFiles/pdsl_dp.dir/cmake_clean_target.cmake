file(REMOVE_RECURSE
  "libpdsl_dp.a"
)
