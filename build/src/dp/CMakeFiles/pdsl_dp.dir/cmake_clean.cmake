file(REMOVE_RECURSE
  "CMakeFiles/pdsl_dp.dir/accountant.cpp.o"
  "CMakeFiles/pdsl_dp.dir/accountant.cpp.o.d"
  "CMakeFiles/pdsl_dp.dir/calibration.cpp.o"
  "CMakeFiles/pdsl_dp.dir/calibration.cpp.o.d"
  "CMakeFiles/pdsl_dp.dir/mechanism.cpp.o"
  "CMakeFiles/pdsl_dp.dir/mechanism.cpp.o.d"
  "CMakeFiles/pdsl_dp.dir/rdp.cpp.o"
  "CMakeFiles/pdsl_dp.dir/rdp.cpp.o.d"
  "libpdsl_dp.a"
  "libpdsl_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
