# Empty dependencies file for pdsl_dp.
# This may be replaced when dependencies are built.
