
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/accountant.cpp" "src/dp/CMakeFiles/pdsl_dp.dir/accountant.cpp.o" "gcc" "src/dp/CMakeFiles/pdsl_dp.dir/accountant.cpp.o.d"
  "/root/repo/src/dp/calibration.cpp" "src/dp/CMakeFiles/pdsl_dp.dir/calibration.cpp.o" "gcc" "src/dp/CMakeFiles/pdsl_dp.dir/calibration.cpp.o.d"
  "/root/repo/src/dp/mechanism.cpp" "src/dp/CMakeFiles/pdsl_dp.dir/mechanism.cpp.o" "gcc" "src/dp/CMakeFiles/pdsl_dp.dir/mechanism.cpp.o.d"
  "/root/repo/src/dp/rdp.cpp" "src/dp/CMakeFiles/pdsl_dp.dir/rdp.cpp.o" "gcc" "src/dp/CMakeFiles/pdsl_dp.dir/rdp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdsl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pdsl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
