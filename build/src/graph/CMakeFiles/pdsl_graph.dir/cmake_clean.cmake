file(REMOVE_RECURSE
  "CMakeFiles/pdsl_graph.dir/mixing.cpp.o"
  "CMakeFiles/pdsl_graph.dir/mixing.cpp.o.d"
  "CMakeFiles/pdsl_graph.dir/spectral.cpp.o"
  "CMakeFiles/pdsl_graph.dir/spectral.cpp.o.d"
  "CMakeFiles/pdsl_graph.dir/topology.cpp.o"
  "CMakeFiles/pdsl_graph.dir/topology.cpp.o.d"
  "libpdsl_graph.a"
  "libpdsl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
