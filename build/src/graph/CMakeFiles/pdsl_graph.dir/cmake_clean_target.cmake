file(REMOVE_RECURSE
  "libpdsl_graph.a"
)
