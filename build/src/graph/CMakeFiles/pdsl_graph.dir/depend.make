# Empty dependencies file for pdsl_graph.
# This may be replaced when dependencies are built.
