# Empty dependencies file for pdsl_attack.
# This may be replaced when dependencies are built.
