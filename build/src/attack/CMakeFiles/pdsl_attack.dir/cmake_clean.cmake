file(REMOVE_RECURSE
  "CMakeFiles/pdsl_attack.dir/label_inference.cpp.o"
  "CMakeFiles/pdsl_attack.dir/label_inference.cpp.o.d"
  "CMakeFiles/pdsl_attack.dir/membership.cpp.o"
  "CMakeFiles/pdsl_attack.dir/membership.cpp.o.d"
  "libpdsl_attack.a"
  "libpdsl_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
