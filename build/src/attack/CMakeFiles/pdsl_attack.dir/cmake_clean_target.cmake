file(REMOVE_RECURSE
  "libpdsl_attack.a"
)
