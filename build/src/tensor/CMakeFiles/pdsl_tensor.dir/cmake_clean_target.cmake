file(REMOVE_RECURSE
  "libpdsl_tensor.a"
)
