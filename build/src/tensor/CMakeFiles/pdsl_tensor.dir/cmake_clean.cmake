file(REMOVE_RECURSE
  "CMakeFiles/pdsl_tensor.dir/ops.cpp.o"
  "CMakeFiles/pdsl_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/pdsl_tensor.dir/tensor.cpp.o"
  "CMakeFiles/pdsl_tensor.dir/tensor.cpp.o.d"
  "libpdsl_tensor.a"
  "libpdsl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
