# Empty dependencies file for pdsl_tensor.
# This may be replaced when dependencies are built.
