file(REMOVE_RECURSE
  "CMakeFiles/pdsl_optim.dir/adam.cpp.o"
  "CMakeFiles/pdsl_optim.dir/adam.cpp.o.d"
  "CMakeFiles/pdsl_optim.dir/qp.cpp.o"
  "CMakeFiles/pdsl_optim.dir/qp.cpp.o.d"
  "CMakeFiles/pdsl_optim.dir/schedule.cpp.o"
  "CMakeFiles/pdsl_optim.dir/schedule.cpp.o.d"
  "CMakeFiles/pdsl_optim.dir/sgd.cpp.o"
  "CMakeFiles/pdsl_optim.dir/sgd.cpp.o.d"
  "libpdsl_optim.a"
  "libpdsl_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsl_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
