# Empty dependencies file for pdsl_optim.
# This may be replaced when dependencies are built.
