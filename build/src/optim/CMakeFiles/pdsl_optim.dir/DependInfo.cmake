
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/adam.cpp" "src/optim/CMakeFiles/pdsl_optim.dir/adam.cpp.o" "gcc" "src/optim/CMakeFiles/pdsl_optim.dir/adam.cpp.o.d"
  "/root/repo/src/optim/qp.cpp" "src/optim/CMakeFiles/pdsl_optim.dir/qp.cpp.o" "gcc" "src/optim/CMakeFiles/pdsl_optim.dir/qp.cpp.o.d"
  "/root/repo/src/optim/schedule.cpp" "src/optim/CMakeFiles/pdsl_optim.dir/schedule.cpp.o" "gcc" "src/optim/CMakeFiles/pdsl_optim.dir/schedule.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "src/optim/CMakeFiles/pdsl_optim.dir/sgd.cpp.o" "gcc" "src/optim/CMakeFiles/pdsl_optim.dir/sgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdsl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
