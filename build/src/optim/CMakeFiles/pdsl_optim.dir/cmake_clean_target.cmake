file(REMOVE_RECURSE
  "libpdsl_optim.a"
)
