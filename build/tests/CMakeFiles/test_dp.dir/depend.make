# Empty dependencies file for test_dp.
# This may be replaced when dependencies are built.
