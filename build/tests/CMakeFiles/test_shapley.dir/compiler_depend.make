# Empty compiler generated dependencies file for test_shapley.
# This may be replaced when dependencies are built.
