file(REMOVE_RECURSE
  "CMakeFiles/test_optim.dir/test_optim.cpp.o"
  "CMakeFiles/test_optim.dir/test_optim.cpp.o.d"
  "test_optim"
  "test_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
