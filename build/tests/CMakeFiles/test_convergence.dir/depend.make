# Empty dependencies file for test_convergence.
# This may be replaced when dependencies are built.
