file(REMOVE_RECURSE
  "CMakeFiles/test_pdsl.dir/test_pdsl.cpp.o"
  "CMakeFiles/test_pdsl.dir/test_pdsl.cpp.o.d"
  "test_pdsl"
  "test_pdsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
