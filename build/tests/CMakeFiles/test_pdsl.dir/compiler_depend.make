# Empty compiler generated dependencies file for test_pdsl.
# This may be replaced when dependencies are built.
