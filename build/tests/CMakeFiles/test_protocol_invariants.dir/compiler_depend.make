# Empty compiler generated dependencies file for test_protocol_invariants.
# This may be replaced when dependencies are built.
