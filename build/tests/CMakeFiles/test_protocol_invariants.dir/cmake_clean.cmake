file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_invariants.dir/test_protocol_invariants.cpp.o"
  "CMakeFiles/test_protocol_invariants.dir/test_protocol_invariants.cpp.o.d"
  "test_protocol_invariants"
  "test_protocol_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
