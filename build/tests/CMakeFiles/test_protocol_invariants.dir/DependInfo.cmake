
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_protocol_invariants.cpp" "tests/CMakeFiles/test_protocol_invariants.dir/test_protocol_invariants.cpp.o" "gcc" "tests/CMakeFiles/test_protocol_invariants.dir/test_protocol_invariants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdsl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/pdsl_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/pdsl_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pdsl_io.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/pdsl_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdsl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/shapley/CMakeFiles/pdsl_shapley.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/pdsl_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/pdsl_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pdsl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pdsl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pdsl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pdsl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdsl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
