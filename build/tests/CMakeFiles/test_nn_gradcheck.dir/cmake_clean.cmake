file(REMOVE_RECURSE
  "CMakeFiles/test_nn_gradcheck.dir/test_nn_gradcheck.cpp.o"
  "CMakeFiles/test_nn_gradcheck.dir/test_nn_gradcheck.cpp.o.d"
  "test_nn_gradcheck"
  "test_nn_gradcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_gradcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
