# Empty dependencies file for test_nn_gradcheck.
# This may be replaced when dependencies are built.
