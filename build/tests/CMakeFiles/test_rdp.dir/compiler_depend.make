# Empty compiler generated dependencies file for test_rdp.
# This may be replaced when dependencies are built.
