file(REMOVE_RECURSE
  "CMakeFiles/test_rdp.dir/test_rdp.cpp.o"
  "CMakeFiles/test_rdp.dir/test_rdp.cpp.o.d"
  "test_rdp"
  "test_rdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
