file(REMOVE_RECURSE
  "CMakeFiles/test_algos.dir/test_algos.cpp.o"
  "CMakeFiles/test_algos.dir/test_algos.cpp.o.d"
  "test_algos"
  "test_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
