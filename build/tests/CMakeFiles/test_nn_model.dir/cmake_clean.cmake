file(REMOVE_RECURSE
  "CMakeFiles/test_nn_model.dir/test_nn_model.cpp.o"
  "CMakeFiles/test_nn_model.dir/test_nn_model.cpp.o.d"
  "test_nn_model"
  "test_nn_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
