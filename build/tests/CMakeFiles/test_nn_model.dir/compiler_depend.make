# Empty compiler generated dependencies file for test_nn_model.
# This may be replaced when dependencies are built.
