// S-RT scaling bench: per-phase wall time of one PDSL configuration at
// --threads 1/2/4/8 (override with --threads <list>). Reports ms/round per
// phase plus end-to-end speedup vs the sequential run, asserts the runs are
// bit-identical (the S-RT determinism contract), and writes the table as JSON
// (default BENCH_threads.json; override with --out).
//
// The parallel phases are the per-agent loops (local_grad, crossgrad, shapley,
// aggregate, gossip); metrics evaluation between rounds stays sequential, so
// end-to-end speedup is bounded by Amdahl — the per-phase columns are the
// honest scaling signal.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "core/experiment.hpp"

namespace {

using pdsl::core::ExperimentConfig;
using pdsl::core::ExperimentResult;

ExperimentConfig base_config(const pdsl::CliArgs& args) {
  ExperimentConfig cfg;
  cfg.algorithm = args.get_string("algo", "pdsl");
  cfg.dataset = "mnist_like";
  cfg.model = "mlp";
  cfg.topology = "full";
  // m >= 8 so the per-agent loops have enough slots for 8 workers.
  cfg.agents = static_cast<std::size_t>(args.get_int("agents", 8));
  cfg.rounds = static_cast<std::size_t>(args.get_int("rounds", 6));
  cfg.train_samples = static_cast<std::size_t>(args.get_int("train", 1600));
  cfg.test_samples = 240;
  cfg.validation_samples = 200;
  cfg.image = static_cast<std::size_t>(args.get_int("image", 12));
  cfg.hidden = 32;
  cfg.hp.batch = 16;
  cfg.hp.gamma = 0.05;
  cfg.hp.alpha = 0.5;
  cfg.hp.clip = 1.0;
  cfg.hp.shapley_permutations =
      static_cast<std::size_t>(args.get_int("mc_perms", 8));
  cfg.hp.validation_batch = 48;
  cfg.sigma_mode = "dpsgd";
  cfg.noise_scale = 0.06;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.metrics.eval_every = 0;  // no per-round test eval: time the phases only
  cfg.metrics.test_subsample = 120;
  return cfg;
}

double ms_per_round(double seconds, std::size_t rounds) {
  return 1e3 * seconds / static_cast<double>(rounds);
}

}  // namespace

int main(int argc, char** argv) {
  const pdsl::CliArgs args(
      argc, argv,
      {"agents", "rounds", "train", "image", "mc_perms", "seed", "algo",
       "threads", "out"});
  const auto widths = args.get_int_list("threads", {1, 2, 4, 8});
  const std::string out_path = args.get_string("out", "BENCH_threads.json");
  ExperimentConfig cfg = base_config(args);

  std::printf("==== bench_threads_scaling: %s, M=%zu, %zu rounds ====\n",
              cfg.algorithm.c_str(), cfg.agents, cfg.rounds);
  std::printf("%7s %10s | per-phase ms/round: %10s %10s %10s %10s %10s | %8s\n",
              "threads", "total(s)", "local_grad", "crossgrad", "shapley",
              "aggregate", "gossip", "speedup");

  pdsl::bench::BenchEnvelope env("threads", "scaling");
  {
    pdsl::json::Object c;
    c["algorithm"] = cfg.algorithm;
    c["agents"] = cfg.agents;
    c["rounds"] = cfg.rounds;
    c["shapley_permutations"] = cfg.hp.shapley_permutations;
    c["seed"] = cfg.seed;
    pdsl::json::Array ws;
    for (const auto w : widths) ws.push_back(pdsl::json::Value(w));
    c["threads"] = pdsl::json::Value(std::move(ws));
    env.set_config(std::move(c));
  }
  env.set_faults(pdsl::bench::fault_config_json(cfg));

  std::vector<float> reference_model;
  double seq_total = 0.0, seq_cross = 0.0, seq_shap = 0.0;
  bool bitwise_ok = true;
  for (const auto w : widths) {
    cfg.threads = static_cast<std::size_t>(w);
    pdsl::Stopwatch sw;
    const ExperimentResult res = pdsl::core::run_experiment(cfg);
    const double total = sw.elapsed_seconds();
    const auto& p = res.phase_totals;
    if (reference_model.empty()) {
      reference_model = res.average_model;
      seq_total = total;
      seq_cross = p.crossgrad_s;
      seq_shap = p.shapley_s;
    } else if (res.average_model != reference_model) {
      bitwise_ok = false;  // determinism contract violation — flag loudly
    }
    std::printf("%7lld %10.2f | %30.2f %10.2f %10.2f %10.2f %10.2f | %7.2fx\n",
                static_cast<long long>(w), total,
                ms_per_round(p.local_grad_s, cfg.rounds),
                ms_per_round(p.crossgrad_s, cfg.rounds),
                ms_per_round(p.shapley_s, cfg.rounds),
                ms_per_round(p.aggregate_s, cfg.rounds),
                ms_per_round(p.gossip_s, cfg.rounds), seq_total / total);

    const std::string prefix = "threads" + std::to_string(w);
    env.add_metric_sample(prefix + ".total_s", "s", total);
    env.add_metric_sample(prefix + ".speedup_total", "x", seq_total / total);
    env.add_metric_sample(prefix + ".crossgrad_ms_per_round", "ms",
                          ms_per_round(p.crossgrad_s, cfg.rounds));
    env.add_metric_sample(prefix + ".shapley_ms_per_round", "ms",
                          ms_per_round(p.shapley_s, cfg.rounds));

    pdsl::json::Object row;
    row["threads"] = static_cast<std::size_t>(w);
    row["total_s"] = total;
    row["local_grad_ms_per_round"] = ms_per_round(p.local_grad_s, cfg.rounds);
    row["crossgrad_ms_per_round"] = ms_per_round(p.crossgrad_s, cfg.rounds);
    row["shapley_ms_per_round"] = ms_per_round(p.shapley_s, cfg.rounds);
    row["aggregate_ms_per_round"] = ms_per_round(p.aggregate_s, cfg.rounds);
    row["gossip_ms_per_round"] = ms_per_round(p.gossip_s, cfg.rounds);
    row["speedup_total"] = seq_total / total;
    row["speedup_crossgrad"] = p.crossgrad_s > 0 ? seq_cross / p.crossgrad_s : 0.0;
    row["speedup_shapley"] = p.shapley_s > 0 ? seq_shap / p.shapley_s : 0.0;
    row["bit_identical_to_threads1"] = res.average_model == reference_model;
    env.add_run(std::move(row));
  }

  // The determinism contract doubles as this bench's acceptance gate.
  pdsl::json::Object gate;
  gate["bit_identical_across_widths"] = bitwise_ok;
  gate["passed"] = bitwise_ok;
  env.set_acceptance(std::move(gate));
  if (!env.write(out_path)) return 1;
  if (!bitwise_ok) {
    std::fprintf(stderr,
                 "ERROR: results differ across thread widths (determinism "
                 "contract violated)\n");
    return 1;
  }
  return 0;
}
