// Fig. 3: average loss vs round, MNIST-like dataset over ring graphs.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  pdsl::bench::SweepSpec spec;
  spec.id = "fig3";
  spec.title = "MNIST-like, ring graphs: avg loss vs round";
  spec.dataset = "mnist_like";
  spec.topology = "ring";
  spec.epsilons = {0.08, 0.1, 0.3};
  return pdsl::bench::run_figure_bench(argc, argv, spec);
}
