// Extension ablation: communication compression. PDSL exchanges four dense
// vectors per edge per round; this sweep measures what TopK sparsification
// and low-bit quantization of every payload cost in accuracy against what
// they save in bytes — the efficiency axis motivated by the paper's related
// work (Soft-DSGD [24] and the communication-bottleneck discussion).

#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "compress/compressor.hpp"

int main(int argc, char** argv) {
  using namespace pdsl;
  const CliArgs args(argc, argv, {"scale", "rounds", "eps", "seed", "out"});
  const std::string scale = args.get_string("scale", "quick");
  auto sp = bench::scale_params(scale, "mnist_like");
  sp.rounds =
      static_cast<std::size_t>(args.get_int("rounds", static_cast<std::int64_t>(sp.rounds)));
  const double eps = args.get_double("eps", 0.3);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  bench::SweepSpec spec;
  spec.id = "ablation_compression";
  spec.dataset = "mnist_like";
  spec.topology = "full";

  std::printf("==== ablation: lossy communication compression (PDSL) ====\n");
  std::printf("scale=%s eps=%.3g rounds=%zu\n\n", scale.c_str(), eps, sp.rounds);
  std::printf("%-12s %10s %10s %12s %12s\n", "channel", "loss", "accuracy", "MB sent",
              "vs dense");

  CsvWriter csv("bench_results/ablation_compression.csv",
                {"channel", "final_loss", "test_accuracy", "bytes", "dense_bytes"});

  bench::BenchEnvelope env("ablation_compression", "ablation");
  {
    json::Object c;
    c["dataset"] = spec.dataset;
    c["topology"] = spec.topology;
    c["rounds"] = sp.rounds;
    c["epsilon"] = eps;
    c["seed"] = seed;
    env.set_config(std::move(c));
  }

  double dense_bytes = 0.0;
  for (const std::string channel :
       {"none", "quant:8", "quant:4", "topk:0.25", "topk:0.1", "topk:0.01"}) {
    auto cfg = bench::make_config(spec, sp, sp.agents.front(), eps, seed);
    cfg.algorithm = "pdsl";
    cfg.compression = channel;
    env.set_faults(bench::fault_config_json(cfg));
    const auto res = core::run_experiment(cfg);
    const double mb = static_cast<double>(res.bytes) / 1e6;
    if (channel == "none") dense_bytes = mb;
    std::printf("%-12s %10.4f %10.3f %12.2f %11.1f%%\n", channel.c_str(), res.final_loss,
                res.final_accuracy, mb, 100.0 * mb / dense_bytes);
    csv.row(channel, res.final_loss, res.final_accuracy, res.bytes, dense_bytes * 1e6);
    csv.flush();
    // Metric names must stay flat: "quant:8" -> "quant_8".
    std::string key = channel;
    for (char& ch : key) {
      if (ch == ':' || ch == '.') ch = '_';
    }
    env.add_metric_sample(key + ".final_accuracy", "accuracy", res.final_accuracy);
    env.add_metric_sample(key + ".bytes_ratio_vs_dense", "x",
                          dense_bytes > 0 ? mb / dense_bytes : 0.0);
    json::Object run;
    run["channel"] = channel;
    run["final_loss"] = res.final_loss;
    run["final_accuracy"] = res.final_accuracy;
    run["bytes"] = res.bytes;
    run["bytes_mb"] = mb;
    run["epsilon_spent"] = res.epsilon_spent;
    env.add_run(std::move(run));
  }
  return env.write(args.get_string("out", "BENCH_ablation_compression.json")) ? 0 : 1;
}
