// Extension ablation: communication compression. PDSL exchanges four dense
// vectors per edge per round; this sweep measures what TopK sparsification
// and low-bit quantization of every payload cost in accuracy against what
// they save in bytes — the efficiency axis motivated by the paper's related
// work (Soft-DSGD [24] and the communication-bottleneck discussion).

#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "compress/compressor.hpp"

int main(int argc, char** argv) {
  using namespace pdsl;
  const CliArgs args(argc, argv, {"scale", "rounds", "eps", "seed"});
  const std::string scale = args.get_string("scale", "quick");
  auto sp = bench::scale_params(scale, "mnist_like");
  sp.rounds =
      static_cast<std::size_t>(args.get_int("rounds", static_cast<std::int64_t>(sp.rounds)));
  const double eps = args.get_double("eps", 0.3);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  bench::SweepSpec spec;
  spec.id = "ablation_compression";
  spec.dataset = "mnist_like";
  spec.topology = "full";

  std::printf("==== ablation: lossy communication compression (PDSL) ====\n");
  std::printf("scale=%s eps=%.3g rounds=%zu\n\n", scale.c_str(), eps, sp.rounds);
  std::printf("%-12s %10s %10s %12s %12s\n", "channel", "loss", "accuracy", "MB sent",
              "vs dense");

  CsvWriter csv("bench_results/ablation_compression.csv",
                {"channel", "final_loss", "test_accuracy", "bytes", "dense_bytes"});

  double dense_bytes = 0.0;
  for (const std::string channel :
       {"none", "quant:8", "quant:4", "topk:0.25", "topk:0.1", "topk:0.01"}) {
    auto cfg = bench::make_config(spec, sp, sp.agents.front(), eps, seed);
    cfg.algorithm = "pdsl";
    cfg.compression = channel;
    const auto res = core::run_experiment(cfg);
    const double mb = static_cast<double>(res.bytes) / 1e6;
    if (channel == "none") dense_bytes = mb;
    std::printf("%-12s %10.4f %10.3f %12.2f %11.1f%%\n", channel.c_str(), res.final_loss,
                res.final_accuracy, mb, 100.0 * mb / dense_bytes);
    csv.row(channel, res.final_loss, res.final_accuracy, res.bytes, dense_bytes * 1e6);
    csv.flush();
  }
  return 0;
}
