// Fig. 5: average loss vs round, CIFAR-like dataset over bipartite graphs.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  pdsl::bench::SweepSpec spec;
  spec.id = "fig5";
  spec.title = "CIFAR-like, bipartite graphs: avg loss vs round";
  spec.dataset = "cifar_like";
  spec.topology = "bipartite";
  spec.epsilons = {0.5, 0.7, 1.0};
  return pdsl::bench::run_figure_bench(argc, argv, spec);
}
