// Fig. 4: average loss vs round, CIFAR-like dataset over fully connected
// graphs, epsilon in {0.5, 0.7, 1.0}.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  pdsl::bench::SweepSpec spec;
  spec.id = "fig4";
  spec.title = "CIFAR-like, fully connected graphs: avg loss vs round";
  spec.dataset = "cifar_like";
  spec.topology = "full";
  spec.epsilons = {0.5, 0.7, 1.0};
  return pdsl::bench::run_figure_bench(argc, argv, spec);
}
