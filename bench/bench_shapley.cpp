// S-SHAP consolidated Shapley bench (absorbs the old ablation_shapley and
// ablation_mc_shapley binaries). Three sections:
//
//  perf      — the hot-path contract. One PDSL testbed (8 agents, full graph,
//              mnist_like mlp) run four ways: the sequential reference path,
//              --shapley-eval batched (stacked-GEMM coalition scoring + the
//              cross-round value cache; BIT-IDENTICAL to sequential),
//              --shapley-eval linear (coalitions scored via first-layer
//              linearity — per-member pre-activations computed once, each
//              coalition a cheap average + the small later layers), and
//              linear + --shapley-method adaptive (antithetic pairs, CI
//              early stop) — the full S-SHAP fast path. Reports per-round
//              wall time, the shapley phase alone, and the speedups; at full
//              scale the acceptance gate requires linear+adaptive to hold
//              >= 5x on the shapley phase and >= 4x end-to-end while (a) the
//              batched mc run is BIT-IDENTICAL to sequential mc and (b) every
//              fast variant preserves each agent's top-1 pi up to
//              characteristic-quantization ties.
//  quality   — estimator error vs exact enumeration (Eq. 18): the Monte Carlo
//              permutation-budget sweep plus the tmc/stratified/adaptive
//              variants at a matched budget.
//  weighting — what Shapley weighting buys (ablation A1): PDSL vs
//              PDSL-uniform vs DP-DPSGD across heterogeneity, label-poisoned
//              agents and Byzantine gradient poisoning.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stopwatch.hpp"
#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"

using namespace pdsl;

namespace {

/// Shared PDSL testbed for the perf and quality sections: mnist_like images,
/// one-hidden-layer mlp, fully connected graph (largest neighborhoods).
struct Bed {
  data::Dataset train, validation, test;
  graph::Topology topo;
  graph::MixingMatrix mixing;
  nn::Model model;
  std::vector<std::vector<std::size_t>> partition;

  static Bed make(std::size_t agents, std::uint64_t seed) {
    Rng rng(seed);
    auto pool = data::make_synthetic_images(data::mnist_like_spec(1200, 10, seed));
    auto [rest, test] = data::split_off(pool, 200, rng);
    auto [train, validation] = data::split_off(rest, 150, rng);
    auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, agents);
    auto mixing = graph::MixingMatrix::metropolis(topo);
    nn::Model model = nn::make_mlp(100, 24, 10);
    Rng part_rng = rng.split(1);
    data::PartitionOptions popts;
    popts.mu = 0.25;
    auto partition = data::dirichlet_partition(train, agents, popts, part_rng);
    return Bed{std::move(train), std::move(validation), std::move(test),
               std::move(topo),  std::move(mixing),     std::move(model),
               std::move(partition)};
  }

  [[nodiscard]] algos::Env env(std::uint64_t seed) const {
    algos::Env e;
    e.topo = &topo;
    e.mixing = &mixing;
    e.train = &train;
    e.validation = &validation;
    e.model_template = &model;
    e.partition = &partition;
    e.hp.gamma = 0.05;
    e.hp.alpha = 0.5;
    e.hp.clip = 1.0;
    e.hp.sigma = 0.05;
    e.hp.batch = 16;
    e.hp.validation_batch = 32;
    e.seed = seed;
    return e;
  }
};

struct PerfRun {
  std::vector<sim::RoundMetrics> series;
  std::vector<std::vector<float>> models;      ///< final x_i, materialized
  std::vector<std::vector<double>> last_phi;   ///< final-round phi per agent
  algos::ShapleyRoundStats stats;              ///< last-round S-SHAP counters
  double round_ms = 0.0;                       ///< mean wall ms per round
  double shapley_ms = 0.0;                     ///< mean shapley-phase ms per round
  double accuracy = 0.0;
};

PerfRun run_perf_variant(const Bed& bed, std::uint64_t seed, std::size_t rounds,
                         const std::string& eval, const std::string& method,
                         std::size_t perms) {
  algos::Env e = bed.env(seed);
  e.hp.shapley_eval = eval;
  e.hp.shapley_method = method;
  e.hp.shapley_permutations = perms;
  core::Pdsl alg(e);
  algos::MetricsOptions mopts;
  mopts.test_subsample = 200;
  mopts.eval_every = rounds;
  PerfRun out;
  out.series = run_with_metrics(alg, rounds, bed.test, mopts);
  for (const auto& m : out.series) {
    out.round_ms += 1e3 * m.round_s / static_cast<double>(rounds);
    out.shapley_ms += 1e3 * m.phases.shapley_s / static_cast<double>(rounds);
  }
  for (std::size_t i = 0; i < alg.num_agents(); ++i) out.models.push_back(alg.models()[i]);
  out.last_phi = alg.last_shapley();
  if (const auto s = alg.shapley_round_stats()) out.stats = *s;
  out.accuracy = out.series.back().test_accuracy;
  return out;
}

/// Round-1 phi under one (eval, method) configuration: every variant starts
/// from the same initial models, so this isolates the estimator/eval-path
/// difference from trajectory divergence (after several rounds the runs play
/// DIFFERENT games on diverged models and their rankings are not comparable;
/// trajectory-level ranking claims live in bench_byzantine's attacker-pi
/// collapse check, which the S-SHAP gate requires to stay green separately).
std::vector<std::vector<double>> probe_phi(const Bed& bed, std::uint64_t seed,
                                           const std::string& eval,
                                           const std::string& method, std::size_t perms) {
  algos::Env e = bed.env(seed);
  e.hp.shapley_eval = eval;
  e.hp.shapley_method = method;
  e.hp.shapley_permutations = perms;
  core::Pdsl alg(e);
  alg.run_round(1);
  return alg.last_shapley();
}

/// Does `var` put each agent's top weight on the same member as `ref`, up to
/// ties? The characteristic is validation accuracy on a 32-sample batch, so
/// phi is quantized at 1/32 — when the reference's top-1 and the variant's
/// pick are within one quantum of each other in the REFERENCE phi, they are
/// statistically indistinguishable and either choice is a faithful ranking.
bool top1_preserved(const char* name, const std::vector<std::vector<double>>& ref,
                    const std::vector<std::vector<double>>& var, double tie_tol) {
  bool ok = true;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const auto argmax = [](const std::vector<double>& row) {
      return static_cast<std::size_t>(
          std::max_element(row.begin(), row.end()) - row.begin());
    };
    const std::size_t s = argmax(ref[i]);
    const std::size_t v = argmax(var[i]);
    if (v != s && ref[i][s] - ref[i][v] > tie_tol) {
      std::fprintf(stderr,
                   "  top-1 divergence [%s] agent %zu: ref prefers %zu "
                   "(phi %.4f), variant prefers %zu (ref phi %.4f, gap %.4f)\n",
                   name, i, s, ref[i][s], v, ref[i][v], ref[i][s] - ref[i][v]);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"scale", "rounds", "agents", "seed", "perms", "mc_perms",
                                  "mu", "eps", "sections", "out"});
  const std::string scale = args.get_string("scale", "quick");
  const auto agents = static_cast<std::size_t>(args.get_int("agents", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto rounds_flag = static_cast<std::size_t>(args.get_int("rounds", 0));
  // R=64 permutations is the canonical per-agent MC budget: the quality
  // section shows mean |phi - exact| has converged well below one
  // characteristic quantum there, and it is the scale the perf gate's
  // speedup thresholds are calibrated against (at tiny budgets the shapley
  // phase no longer dominates the round and a 4x end-to-end speedup is
  // arithmetically impossible for ANY shapley-only optimization).
  const auto mc_perms = static_cast<std::size_t>(args.get_int("mc_perms", 64));
  const auto perm_budgets = args.get_int_list("perms", {2, 4, 8, 16, 32});
  const double eps = args.get_double("eps", 0.1);
  const auto mus = args.get_double_list("mu", {0.1, 0.25, 1.0});
  const std::string sections = args.get_string("sections", "perf,quality,weighting");
  const auto want = [&](const char* s) { return sections.find(s) != std::string::npos; };

  std::filesystem::create_directories("bench_results");  // CSVs land here
  bench::BenchEnvelope env("shapley", "ablation");
  {
    json::Object c;
    c["agents"] = agents;
    c["rounds"] = rounds_flag;
    c["seed"] = seed;
    c["mc_perms"] = mc_perms;
    c["epsilon"] = eps;
    c["sections"] = sections;
    env.set_config(std::move(c));
  }

  bool gate_evaluated = false;
  bool ok = true;

  // ---------------------------------------------------------------- perf --
  if (want("perf")) {
    const std::size_t rounds = rounds_flag != 0 ? rounds_flag : 6;
    const Bed bed = Bed::make(agents, seed);
    std::printf("==== S-SHAP perf: sequential vs batched vs linear(+adaptive) ====\n");
    std::printf("M=%zu rounds=%zu mc_perms=%zu (mnist_like mlp, full graph)\n", agents,
                rounds, mc_perms);

    const auto seq = run_perf_variant(bed, seed, rounds, "sequential", "mc", mc_perms);
    const auto bat = run_perf_variant(bed, seed, rounds, "batched", "mc", mc_perms);
    const auto lin = run_perf_variant(bed, seed, rounds, "linear", "mc", mc_perms);
    const auto ada = run_perf_variant(bed, seed, rounds, "linear", "adaptive", mc_perms);

    const bool bit_identical = seq.models == bat.models;
    const double tie_tol = 1.0 / 32.0;  // one validation-batch quantum
    const auto ref_phi = probe_phi(bed, seed, "sequential", "mc", mc_perms);
    const bool top1_bat = top1_preserved(
        "batched", ref_phi, probe_phi(bed, seed, "batched", "mc", mc_perms), tie_tol);
    const bool top1_lin = top1_preserved(
        "linear", ref_phi, probe_phi(bed, seed, "linear", "mc", mc_perms), tie_tol);
    const bool top1_ada = top1_preserved(
        "adaptive", ref_phi, probe_phi(bed, seed, "linear", "adaptive", mc_perms), tie_tol);
    const bool top1_ok = top1_bat && top1_lin && top1_ada;
    const double shap_speedup_bat = seq.shapley_ms / std::max(bat.shapley_ms, 1e-9);
    const double shap_speedup_lin = seq.shapley_ms / std::max(lin.shapley_ms, 1e-9);
    const double shap_speedup_ada = seq.shapley_ms / std::max(ada.shapley_ms, 1e-9);
    const double round_speedup_bat = seq.round_ms / std::max(bat.round_ms, 1e-9);
    const double round_speedup_lin = seq.round_ms / std::max(lin.round_ms, 1e-9);
    const double round_speedup_ada = seq.round_ms / std::max(ada.round_ms, 1e-9);

    CsvWriter csv("bench_results/shapley_perf.csv",
                  {"variant", "round_ms", "shapley_ms", "coalition_evals",
                   "coalitions_batched", "cache_hits", "permutations_used",
                   "early_stopped", "test_accuracy"});
    std::printf("%22s %10s %12s %8s %8s %8s %6s %9s\n", "variant", "round_ms",
                "shapley_ms", "evals", "batched", "cachehit", "perms", "accuracy");
    const auto report = [&](const char* name, const PerfRun& r) {
      std::printf("%22s %10.2f %12.2f %8zu %8zu %8zu %6zu %9.3f\n", name, r.round_ms,
                  r.shapley_ms, r.stats.coalition_evals, r.stats.coalitions_batched,
                  r.stats.cache_hits, r.stats.permutations_used, r.accuracy);
      csv.row(name, r.round_ms, r.shapley_ms, r.stats.coalition_evals,
              r.stats.coalitions_batched, r.stats.cache_hits, r.stats.permutations_used,
              r.stats.early_stopped, r.accuracy);
      const std::string p = std::string("perf.") + name;
      env.add_metric_sample(p + ".round_ms", "ms", r.round_ms);
      env.add_metric_sample(p + ".shapley_ms", "ms", r.shapley_ms);
      env.add_metric_sample(p + ".coalition_evals", "count",
                            static_cast<double>(r.stats.coalition_evals));
      json::Object run;
      run["section"] = std::string("perf");
      run["variant"] = std::string(name);
      run["round_ms"] = r.round_ms;
      run["shapley_ms"] = r.shapley_ms;
      run["coalition_evals"] = r.stats.coalition_evals;
      run["coalitions_batched"] = r.stats.coalitions_batched;
      run["cache_hits"] = r.stats.cache_hits;
      run["cache_misses"] = r.stats.cache_misses;
      run["permutations_used"] = r.stats.permutations_used;
      run["early_stopped"] = r.stats.early_stopped;
      run["test_accuracy"] = r.accuracy;
      env.add_run(std::move(run));
    };
    report("sequential_mc", seq);
    report("batched_mc", bat);
    report("linear_mc", lin);
    report("linear_adaptive", ada);
    csv.flush();
    std::printf("speedup: batched %.2fx shapley / %.2fx round; "
                "linear %.2fx / %.2fx; linear+adaptive %.2fx / %.2fx\n",
                shap_speedup_bat, round_speedup_bat, shap_speedup_lin, round_speedup_lin,
                shap_speedup_ada, round_speedup_ada);
    std::printf("batched bit-identical to sequential: %s; top-1 pi preserved: %s\n",
                bit_identical ? "yes" : "NO", top1_ok ? "yes" : "NO");
    env.add_metric_sample("perf.batched.shapley_speedup_x", "x", shap_speedup_bat);
    env.add_metric_sample("perf.batched.round_speedup_x", "x", round_speedup_bat);
    env.add_metric_sample("perf.linear.shapley_speedup_x", "x", shap_speedup_lin);
    env.add_metric_sample("perf.linear.round_speedup_x", "x", round_speedup_lin);
    env.add_metric_sample("perf.adaptive.shapley_speedup_x", "x", shap_speedup_ada);
    env.add_metric_sample("perf.adaptive.round_speedup_x", "x", round_speedup_ada);

    // The bit-identity half of the contract holds at ANY scale. The timing
    // thresholds and the ranking check are only meaningful at the full
    // default size (tiny smoke runs are all overhead, and after 2 rounds phi
    // is one big statistical tie), so they arm at >= 8 agents, >= 5 rounds.
    if (!bit_identical) {
      std::fprintf(stderr, "CONTRACT VIOLATION: batched mc diverged from sequential mc\n");
      ok = false;
    }
    if (agents >= 8 && rounds >= 5) {
      gate_evaluated = true;
      if (!top1_ok) {
        std::fprintf(stderr,
                     "CONTRACT VIOLATION: top-1 pi changed beyond tie tolerance\n");
        ok = false;
      }
      if (shap_speedup_ada < 5.0) {
        std::fprintf(stderr,
                     "CONTRACT VIOLATION: shapley-phase speedup %.2fx < 5x\n",
                     shap_speedup_ada);
        ok = false;
      }
      if (round_speedup_ada < 4.0) {
        std::fprintf(stderr, "CONTRACT VIOLATION: round speedup %.2fx < 4x\n",
                     round_speedup_ada);
        ok = false;
      }
      json::Object gate;
      gate["shapley_speedup_x"] = shap_speedup_ada;
      gate["round_speedup_x"] = round_speedup_ada;
      gate["linear_shapley_speedup_x"] = shap_speedup_lin;
      gate["batched_shapley_speedup_x"] = shap_speedup_bat;
      gate["batched_bit_identical"] = bit_identical;
      gate["top1_pi_preserved"] = top1_ok;
      gate["passed"] = ok;
      env.set_acceptance(std::move(gate));
    }
  }

  // ------------------------------------------------------------- quality --
  if (want("quality")) {
    const std::size_t rounds = rounds_flag != 0 ? rounds_flag : 6;
    const std::size_t q_agents = std::min<std::size_t>(agents, 6);  // exact is 2^n
    const Bed bed = Bed::make(q_agents, seed);
    std::printf("\n==== S-SHAP quality: estimators vs exact enumeration (M=%zu) ====\n",
                q_agents);

    struct QRun {
      std::vector<std::vector<std::vector<double>>> phis;  // [round][agent][k]
      double seconds = 0.0;
      std::size_t evals = 0;
      double acc = 0.0;
    };
    const auto collect = [&](const std::string& method, std::size_t perms) {
      algos::Env e = bed.env(seed);
      e.hp.shapley_method = method;
      e.hp.shapley_permutations = perms;
      core::Pdsl alg(e);
      QRun out;
      Stopwatch sw;
      for (std::size_t t = 1; t <= rounds; ++t) {
        alg.run_round(t);
        out.phis.push_back(alg.last_shapley());
        out.evals += alg.last_characteristic_evals();
      }
      out.seconds = sw.elapsed_seconds();
      nn::Model ws = bed.model;
      for (std::size_t i = 0; i < q_agents; ++i) {
        out.acc += sim::evaluate(ws, alg.models()[i], bed.test, 200).accuracy;
      }
      out.acc /= static_cast<double>(q_agents);
      return out;
    };

    const auto exact = collect("exact", 1);
    std::printf("exact: evals=%zu time=%.2fs acc=%.3f\n", exact.evals, exact.seconds,
                exact.acc);
    env.add_metric_sample("exact.char_evals", "count", static_cast<double>(exact.evals));
    env.add_metric_sample("exact.seconds", "s", exact.seconds);
    env.add_metric_sample("exact.test_accuracy", "accuracy", exact.acc);

    const auto phi_err = [&](const QRun& r) {
      double err = 0.0;
      std::size_t count = 0;
      for (std::size_t t = 0; t < rounds; ++t) {
        for (std::size_t i = 0; i < q_agents; ++i) {
          for (std::size_t k = 0; k < exact.phis[t][i].size(); ++k) {
            err += std::abs(r.phis[t][i][k] - exact.phis[t][i][k]);
            ++count;
          }
        }
      }
      return err / static_cast<double>(count);
    };

    CsvWriter csv("bench_results/shapley_quality.csv",
                  {"method", "permutations", "mean_abs_phi_error", "char_evals", "seconds",
                   "test_accuracy"});
    std::printf("%8s %6s %20s %12s %10s %10s\n", "method", "R", "mean |phi - exact|",
                "char evals", "time(s)", "accuracy");
    const auto report = [&](const std::string& method, std::size_t perms, const QRun& r) {
      const double err = phi_err(r);
      std::printf("%8s %6zu %20.5f %12zu %10.2f %10.3f\n", method.c_str(), perms, err,
                  r.evals, r.seconds, r.acc);
      csv.row(method, perms, err, r.evals, r.seconds, r.acc);
      csv.flush();
      json::Object run;
      run["section"] = std::string("quality");
      run["method"] = method;
      run["permutations"] = perms;
      run["mean_abs_phi_error"] = err;
      run["char_evals"] = r.evals;
      run["seconds"] = r.seconds;
      run["test_accuracy"] = r.acc;
      env.add_run(std::move(run));
      return err;
    };
    for (const auto perms : perm_budgets) {
      const auto R = static_cast<std::size_t>(perms);
      const auto mc = collect("mc", R);
      const double err = report("mc", R, mc);
      const std::string prefix = "perm" + std::to_string(R);
      env.add_metric_sample(prefix + ".mean_abs_phi_error", "phi", err);
      env.add_metric_sample(prefix + ".char_evals", "count",
                            static_cast<double>(mc.evals));
      env.add_metric_sample(prefix + ".seconds", "s", mc.seconds);
    }
    std::printf("-- variants at matched budget (R=8) --\n");
    for (const std::string method : {"tmc", "stratified", "adaptive"}) {
      const auto r = collect(method, 8);
      const double err = report(method, 8, r);
      env.add_metric_sample("variant_" + method + ".mean_abs_phi_error", "phi", err);
      env.add_metric_sample("variant_" + method + ".char_evals", "count",
                            static_cast<double>(r.evals));
    }
  }

  // ----------------------------------------------------------- weighting --
  if (want("weighting")) {
    auto sp = bench::scale_params(scale, "mnist_like");
    if (rounds_flag != 0) sp.rounds = rounds_flag;
    const std::size_t w_agents = std::min<std::size_t>(agents, 6);
    bench::SweepSpec spec;
    spec.id = "shapley";
    spec.dataset = "mnist_like";
    spec.topology = "full";

    std::printf("\n==== S-SHAP weighting ablation (PDSL vs PDSL-uniform vs DP-DPSGD) ====\n");
    std::printf("M=%zu eps=%.3g rounds=%zu\n", w_agents, eps, sp.rounds);
    CsvWriter csv("bench_results/shapley_weighting.csv",
                  {"section", "mu", "corrupt_agents", "byzantine_agents", "algorithm",
                   "final_loss", "test_accuracy", "heterogeneity"});

    std::printf("%8s %15s %12s %12s %14s\n", "mu", "algorithm", "final_loss", "accuracy",
                "heterogeneity");
    for (const double mu : mus) {
      for (const std::string algo : {"pdsl", "pdsl_uniform", "dp_dpsgd"}) {
        auto cfg = bench::make_config(spec, sp, w_agents, eps, seed);
        cfg.algorithm = algo;
        cfg.mu = mu;
        env.set_faults(bench::fault_config_json(cfg));
        const auto res = core::run_experiment(cfg);
        std::printf("%8.3g %15s %12.4f %12.3f %14.3f\n", mu,
                    bench::display_name(algo).c_str(), res.final_loss, res.final_accuracy,
                    res.heterogeneity);
        csv.row("mu_sweep", mu, 0, 0, bench::display_name(algo), res.final_loss,
                res.final_accuracy, res.heterogeneity);
        csv.flush();
        env.add_metric_sample("mu_sweep." + algo + ".final_accuracy", "accuracy",
                              res.final_accuracy);
        json::Object run;
        run["section"] = std::string("mu_sweep");
        run["mu"] = mu;
        run["algorithm"] = algo;
        run["final_loss"] = res.final_loss;
        run["final_accuracy"] = res.final_accuracy;
        run["heterogeneity"] = res.heterogeneity;
        env.add_run(std::move(run));
      }
    }

    // Label-poisoned agents: uniform averaging has no defense, the Shapley
    // characteristic scores garbage contributions near zero on Q.
    std::printf("-- poisoned agents (mu=0.25) --\n%10s %15s %12s %12s\n", "poisoned",
                "algorithm", "final_loss", "accuracy");
    for (const std::size_t bad : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
      for (const std::string algo : {"pdsl", "pdsl_uniform", "dp_dpsgd"}) {
        auto cfg = bench::make_config(spec, sp, w_agents, eps, seed);
        cfg.algorithm = algo;
        cfg.corrupt_agents = bad;
        const auto res = core::run_experiment(cfg);
        std::printf("%10zu %15s %12.4f %12.3f\n", bad, bench::display_name(algo).c_str(),
                    res.final_loss, res.final_accuracy);
        csv.row("poison", 0.25, bad, 0, bench::display_name(algo), res.final_loss,
                res.final_accuracy, res.heterogeneity);
        csv.flush();
        env.add_metric_sample("poison." + algo + ".final_accuracy", "accuracy",
                              res.final_accuracy);
        json::Object run;
        run["section"] = std::string("poison");
        run["corrupt_agents"] = bad;
        run["algorithm"] = algo;
        run["final_loss"] = res.final_loss;
        run["final_accuracy"] = res.final_accuracy;
        env.add_run(std::move(run));
      }
    }

    // Byzantine gradient poisoning (flip + 3x amplify): the paper's accuracy
    // characteristic is blind at a random init, the robust variant (loss
    // characteristic + ReLU normalization) zeroes attackers from round one.
    std::printf("-- byzantine agents --\n%10s %15s %12s %12s\n", "byzantine", "algorithm",
                "final_loss", "accuracy");
    for (const std::size_t bad : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
      for (const std::string algo : {"pdsl", "pdsl_robust", "pdsl_uniform"}) {
        auto cfg = bench::make_config(spec, sp, w_agents, eps, seed);
        cfg.algorithm = algo;
        cfg.byzantine_agents = bad;
        const auto res = core::run_experiment(cfg);
        std::printf("%10zu %15s %12.4f %12.3f\n", bad, bench::display_name(algo).c_str(),
                    res.final_loss, res.final_accuracy);
        csv.row("byzantine", 0.25, 0, bad, bench::display_name(algo), res.final_loss,
                res.final_accuracy, res.heterogeneity);
        csv.flush();
        env.add_metric_sample("byzantine." + algo + ".final_accuracy", "accuracy",
                              res.final_accuracy);
        json::Object run;
        run["section"] = std::string("byzantine");
        run["byzantine_agents"] = bad;
        run["algorithm"] = algo;
        run["final_loss"] = res.final_loss;
        run["final_accuracy"] = res.final_accuracy;
        env.add_run(std::move(run));
      }
    }
  }

  if (!env.write(args.get_string("out", "BENCH_shapley.json"))) return 1;
  if (gate_evaluated) {
    std::printf("acceptance: %s\n", ok ? "PASSED" : "FAILED");
  }
  return ok ? 0 : 1;
}
