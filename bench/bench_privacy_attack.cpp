// Extension experiment: empirical privacy. The paper motivates DP with the
// risk that shared cross-gradients leak private data ([15]-[17]); this bench
// quantifies that risk directly and shows what the Gaussian mechanism buys:
//   (a) label-leakage attack on released gradients vs sigma (Sec. IV's
//       cross-gradient channel is exactly what the attacker sees);
//   (b) loss-threshold membership inference against PDSL's final models,
//       trained with and without DP.

#include <cstdio>

#include "attack/label_inference.hpp"
#include "attack/membership.hpp"
#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "dp/mechanism.hpp"
#include "nn/model_zoo.hpp"

using namespace pdsl;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"trials", "rounds", "sigmas", "seed", "out"});
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 120));
  const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 20));
  const auto sigmas = args.get_double_list("sigmas", {0.0, 0.02, 0.05, 0.1, 0.3, 1.0});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("==== extension: empirical privacy attacks vs Gaussian noise ====\n\n");

  pdsl::bench::BenchEnvelope envelope("privacy_attack", "attack");
  {
    json::Object c;
    c["trials"] = trials;
    c["rounds"] = rounds;
    c["seed"] = seed;
    json::Array ss;
    for (const double s : sigmas) ss.push_back(json::Value(s));
    c["sigmas"] = json::Value(std::move(ss));
    envelope.set_config(std::move(c));
  }

  // Shared data/model setup.
  Rng rng(seed);
  auto pool = data::make_synthetic_images(data::mnist_like_spec(1400, 10, seed));
  auto [rest, holdout] = data::split_off(pool, 300, rng);
  auto [train, validation] = data::split_off(rest, 150, rng);

  nn::Model model = nn::make_mlp(train.sample_numel(), 32, 10);
  Rng init_rng = rng.split(1);
  model.init(init_rng);

  // (a) Label leakage from released (cross-)gradients.
  std::printf("-- label-leakage attack on released gradients (batch=16, C=1) --\n");
  std::printf("%8s %10s %10s\n", "sigma", "hit_rate", "chance");
  CsvWriter csv("bench_results/privacy_attack.csv",
                {"attack", "sigma", "metric", "value", "baseline"});
  for (const double sigma : sigmas) {
    const auto res =
        attack::label_leakage_experiment(model, train, 16, 1.0, sigma, trials, rng.split(7));
    std::printf("%8.3g %10.3f %10.3f\n", sigma, res.hit_rate, res.chance);
    csv.row("label_leakage", sigma, "hit_rate", res.hit_rate, res.chance);
    if (sigma == sigmas.front()) {
      envelope.add_metric_sample("label_leakage.hit_rate_no_noise", "rate", res.hit_rate);
    }
    if (sigma == sigmas.back()) {
      envelope.add_metric_sample("label_leakage.hit_rate_max_noise", "rate", res.hit_rate);
    }
    json::Object run;
    run["attack"] = std::string("label_leakage");
    run["sigma"] = sigma;
    run["hit_rate"] = res.hit_rate;
    run["chance"] = res.chance;
    envelope.add_run(std::move(run));
  }

  // (b) Membership inference against PDSL's trained models.
  std::printf("\n-- membership inference vs PDSL's final model --\n");
  std::printf("%8s %8s %12s %14s %14s\n", "sigma", "auc", "advantage", "member_loss",
              "holdout_loss");
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 5);
  const auto mixing = graph::MixingMatrix::metropolis(topo);
  Rng part_rng = rng.split(2);
  data::PartitionOptions popts;
  popts.mu = 0.25;
  const auto partition = data::dirichlet_partition(train, 5, popts, part_rng);

  for (const double sigma : {0.0, 0.05, 0.3}) {
    algos::Env env;
    env.topo = &topo;
    env.mixing = &mixing;
    env.train = &train;
    env.validation = &validation;
    env.model_template = &model;
    env.partition = &partition;
    env.hp.gamma = 0.05;
    env.hp.alpha = 0.5;
    env.hp.clip = 1.0;
    env.hp.sigma = sigma;
    env.hp.batch = 16;
    env.hp.shapley_permutations = 6;
    env.hp.validation_batch = 32;
    env.seed = seed;
    core::Pdsl alg(env);
    for (std::size_t t = 1; t <= rounds; ++t) alg.run_round(t);

    nn::Model ws = model;
    const auto members = train.subset(partition[0]);
    const auto res = attack::membership_inference(ws, alg.models()[0], members, holdout, 200);
    std::printf("%8.3g %8.3f %12.3f %14.4f %14.4f\n", sigma, res.auc, res.advantage,
                res.mean_member_loss, res.mean_nonmember_loss);
    csv.row("membership", sigma, "auc", res.auc, 0.5);
    csv.row("membership", sigma, "advantage", res.advantage, 0.0);
    if (sigma == 0.0) {
      envelope.add_metric_sample("membership.auc_no_noise", "auc", res.auc);
    } else {
      envelope.add_metric_sample("membership.auc_with_dp", "auc", res.auc);
    }
    json::Object run;
    run["attack"] = std::string("membership");
    run["sigma"] = sigma;
    run["auc"] = res.auc;
    run["advantage"] = res.advantage;
    run["mean_member_loss"] = res.mean_member_loss;
    run["mean_nonmember_loss"] = res.mean_nonmember_loss;
    envelope.add_run(std::move(run));
  }
  csv.flush();
  std::printf("\nrows in bench_results/privacy_attack.csv\n");
  return envelope.write(args.get_string("out", "BENCH_privacy_attack.json")) ? 0 : 1;
}
