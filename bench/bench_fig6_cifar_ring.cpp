// Fig. 6: average loss vs round, CIFAR-like dataset over ring graphs.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  pdsl::bench::SweepSpec spec;
  spec.id = "fig6";
  spec.title = "CIFAR-like, ring graphs: avg loss vs round";
  spec.dataset = "cifar_like";
  spec.topology = "ring";
  spec.epsilons = {0.5, 0.7, 1.0};
  return pdsl::bench::run_figure_bench(argc, argv, spec);
}
