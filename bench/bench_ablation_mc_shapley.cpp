// Ablation A2: Monte Carlo Shapley (Algorithm 2) vs exact enumeration
// (Eq. 18). Sweeps the permutation budget R, reporting (a) the deviation of
// the MC Shapley values from the exact ones on identical rounds (the DP noise
// streams are shared, so trajectories are comparable), (b) characteristic-
// function evaluation counts, and (c) end-task accuracy.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stopwatch.hpp"
#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"

using namespace pdsl;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"rounds", "agents", "seed", "perms", "out"});
  const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 8));
  const auto agents = static_cast<std::size_t>(args.get_int("agents", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto perm_budgets = args.get_int_list("perms", {2, 4, 8, 16, 32});

  std::printf("==== ablation: Monte Carlo vs exact Shapley (M=%zu, %zu rounds) ====\n", agents,
              rounds);

  // Shared environment (fully connected so neighborhoods are largest).
  Rng rng(seed);
  auto pool = data::make_synthetic_images(data::mnist_like_spec(1200, 10, seed));
  auto [rest, test] = data::split_off(pool, 200, rng);
  auto [train, validation] = data::split_off(rest, 150, rng);
  auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, agents);
  auto mixing = graph::MixingMatrix::metropolis(topo);
  nn::Model model = nn::make_mlp(100, 24, 10);
  Rng part_rng = rng.split(1);
  data::PartitionOptions popts;
  popts.mu = 0.25;
  auto partition = data::dirichlet_partition(train, agents, popts, part_rng);

  algos::Env env;
  env.topo = &topo;
  env.mixing = &mixing;
  env.train = &train;
  env.validation = &validation;
  env.model_template = &model;
  env.partition = &partition;
  env.hp.gamma = 0.05;
  env.hp.alpha = 0.5;
  env.hp.clip = 1.0;
  env.hp.sigma = 0.05;
  env.hp.batch = 16;
  env.hp.validation_batch = 32;
  env.seed = seed;

  // Reference: exact Shapley (Eq. 18) every round.
  auto run_and_collect = [&](const std::string& method, std::size_t perms) {
    algos::Env e = env;
    e.hp.shapley_method = method;
    e.hp.shapley_permutations = perms;
    core::Pdsl alg(e);
    std::vector<std::vector<std::vector<double>>> phis;  // [round][agent][k]
    Stopwatch sw;
    std::size_t evals = 0;
    for (std::size_t t = 1; t <= rounds; ++t) {
      alg.run_round(t);
      phis.push_back(alg.last_shapley());
      evals += alg.last_characteristic_evals();
    }
    struct Out {
      std::vector<std::vector<std::vector<double>>> phis;
      double seconds;
      std::size_t evals;
      double acc;
    };
    nn::Model ws = model;
    double acc = 0.0;
    for (std::size_t i = 0; i < agents; ++i) {
      acc += sim::evaluate(ws, alg.models()[i], test, 200).accuracy;
    }
    return Out{std::move(phis), sw.elapsed_seconds(), evals, acc / agents};
  };

  bench::BenchEnvelope envelope("ablation_mc_shapley", "ablation");
  {
    json::Object c;
    c["agents"] = agents;
    c["rounds"] = rounds;
    c["seed"] = seed;
    json::Array budgets;
    for (const auto p : perm_budgets) budgets.push_back(json::Value(p));
    c["perm_budgets"] = json::Value(std::move(budgets));
    envelope.set_config(std::move(c));
  }

  const auto exact = run_and_collect("exact", 1);
  std::printf("exact: evals=%zu time=%.2fs acc=%.3f\n", exact.evals, exact.seconds, exact.acc);
  envelope.add_metric_sample("exact.char_evals", "count", static_cast<double>(exact.evals));
  envelope.add_metric_sample("exact.seconds", "s", exact.seconds);
  envelope.add_metric_sample("exact.test_accuracy", "accuracy", exact.acc);

  CsvWriter csv("bench_results/ablation_mc_shapley.csv",
                {"permutations", "mean_abs_phi_error", "char_evals", "seconds",
                 "test_accuracy", "exact_evals", "exact_seconds", "exact_accuracy"});

  std::printf("%6s %20s %12s %10s %10s\n", "R", "mean |phi - exact|", "char evals", "time(s)",
              "accuracy");
  auto report = [&](const std::string& label, const auto& mc) {
    double err = 0.0;
    std::size_t count = 0;
    for (std::size_t t = 0; t < rounds; ++t) {
      for (std::size_t i = 0; i < agents; ++i) {
        for (std::size_t k = 0; k < exact.phis[t][i].size(); ++k) {
          err += std::abs(mc.phis[t][i][k] - exact.phis[t][i][k]);
          ++count;
        }
      }
    }
    err /= static_cast<double>(count);
    std::printf("%6s %20.5f %12zu %10.2f %10.3f\n", label.c_str(), err, mc.evals, mc.seconds,
                mc.acc);
    return err;
  };
  for (const auto perms : perm_budgets) {
    const auto mc = run_and_collect("mc", static_cast<std::size_t>(perms));
    const double err = report(std::to_string(perms), mc);
    csv.row(perms, err, mc.evals, mc.seconds, mc.acc, exact.evals, exact.seconds, exact.acc);
    csv.flush();
    const std::string prefix = "perm" + std::to_string(perms);
    envelope.add_metric_sample(prefix + ".mean_abs_phi_error", "phi", err);
    envelope.add_metric_sample(prefix + ".char_evals", "count",
                               static_cast<double>(mc.evals));
    envelope.add_metric_sample(prefix + ".seconds", "s", mc.seconds);
    json::Object run;
    run["section"] = std::string("mc_sweep");
    run["permutations"] = perms;
    run["mean_abs_phi_error"] = err;
    run["char_evals"] = mc.evals;
    run["seconds"] = mc.seconds;
    run["test_accuracy"] = mc.acc;
    envelope.add_run(std::move(run));
  }

  // Estimator variants at a fixed budget (R = 8 permutations-equivalent).
  std::printf("\n-- estimator variants at matched budget --\n");
  for (const std::string method : {"tmc", "stratified"}) {
    const auto mc = run_and_collect(method, 8);
    const double err = report(method == "tmc" ? "tmc" : "strat", mc);
    envelope.add_metric_sample("variant_" + method + ".mean_abs_phi_error", "phi", err);
    json::Object run;
    run["section"] = std::string("variants");
    run["method"] = method;
    run["mean_abs_phi_error"] = err;
    run["char_evals"] = mc.evals;
    run["seconds"] = mc.seconds;
    run["test_accuracy"] = mc.acc;
    envelope.add_run(std::move(run));
  }
  return envelope.write(args.get_string("out", "BENCH_ablation_mc_shapley.json")) ? 0 : 1;
}
