#include "bench_util.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/csv.hpp"
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"

namespace pdsl::bench {

namespace {

const std::vector<std::string> kFlags = {
    "scale",  "agents", "eps",        "rounds", "seed",  "train", "image",
    "batch",  "model",  "mc_perms",   "valbatch", "out", "gamma", "alpha",
    "print_every", "noise_scale", "profile", "trace-out", "trace_out", "threads"};

constexpr const char* kOutDir = "bench_results";

std::string csv_path(const std::string& id) {
  std::filesystem::create_directories(kOutDir);
  return std::string(kOutDir) + "/" + id + ".csv";
}

double default_gamma(const std::string& dataset) {
  // Paper Sec. VI-A uses gamma=1e-3 (MNIST) / 1e-2 (CIFAR) for its CNNs; the
  // reduced-scale MLPs train with 0.05 on both synthetic sets. --gamma
  // overrides, and --scale paper pairs with the CNN models where the paper
  // rates apply.
  (void)dataset;
  return 0.05;
}

double default_alpha(const std::string& dataset) {
  return dataset == "cifar_like" ? 0.7 : 0.5;  // paper Sec. VI-A
}

}  // namespace

ScaleParams scale_params(const std::string& scale, const std::string& dataset) {
  ScaleParams sp;
  const bool cifar = dataset == "cifar_like";
  if (scale == "quick") {
    sp.agents = {6};
    sp.rounds = cifar ? 35 : 25;
    sp.train_samples = 900;
    sp.test_samples = 240;
    sp.validation_samples = 150;
    sp.image = cifar ? 8 : 10;
    sp.batch = 16;
    sp.model = "mlp";
    sp.shapley_permutations = 6;
    sp.validation_batch = 32;
    sp.test_subsample = 160;
    sp.eval_every = 5;
    sp.print_every = 2;
    // The CIFAR-like task is harder, so its (larger) epsilon grid needs a
    // larger multiplier for the noise to remain the visible axis.
    sp.noise_scale = cifar ? 0.25 : 0.06;
  } else if (scale == "medium") {
    sp.agents = {10};
    sp.rounds = cifar ? 80 : 60;
    sp.train_samples = 3000;
    sp.test_samples = 600;
    sp.validation_samples = 400;
    sp.image = cifar ? 12 : 14;
    sp.batch = 32;
    sp.model = "mlp";
    sp.shapley_permutations = 8;
    sp.validation_batch = 48;
    sp.test_subsample = 300;
    sp.eval_every = 10;
    sp.print_every = 4;
    sp.noise_scale = cifar ? 0.4 : 0.15;
  } else if (scale == "paper") {
    sp.agents = {10, 15, 20};
    sp.rounds = cifar ? 200 : 180;
    sp.train_samples = cifar ? 48000 : 58000;
    sp.test_samples = 8000;
    sp.validation_samples = 2000;  // paper: 2000 held-out validation images
    sp.image = cifar ? 32 : 28;
    sp.batch = 250;  // paper Sec. VI-A
    sp.model = cifar ? "cifar_cnn" : "mnist_cnn";
    sp.shapley_permutations = 10;
    sp.validation_batch = 250;
    sp.test_subsample = 2000;
    sp.eval_every = 10;
    sp.print_every = 10;
  } else {
    throw std::invalid_argument("unknown --scale '" + scale + "' (quick|medium|paper)");
  }
  return sp;
}

core::ExperimentConfig make_config(const SweepSpec& spec, const ScaleParams& sp,
                                   std::size_t agents, double epsilon, std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.dataset = spec.dataset;
  cfg.model = sp.model;
  cfg.topology = spec.topology;
  cfg.agents = agents;
  cfg.rounds = sp.rounds;
  cfg.train_samples = sp.train_samples;
  cfg.test_samples = sp.test_samples;
  cfg.validation_samples = sp.validation_samples;
  cfg.image = sp.image;
  cfg.mu = 0.25;  // paper Sec. VI-A
  cfg.hp.batch = sp.batch;
  cfg.hp.gamma = spec.gamma > 0.0 ? spec.gamma : default_gamma(spec.dataset);
  cfg.hp.alpha = spec.alpha > 0.0 ? spec.alpha : default_alpha(spec.dataset);
  cfg.hp.clip = 1.0;
  cfg.hp.shapley_permutations = sp.shapley_permutations;
  cfg.hp.validation_batch = sp.validation_batch;
  cfg.epsilon = epsilon;
  cfg.delta = 1e-3;
  cfg.sigma_mode = "dpsgd";
  cfg.noise_scale = sp.noise_scale;
  cfg.seed = seed;
  cfg.metrics.test_subsample = sp.test_subsample;
  cfg.metrics.eval_every = sp.eval_every;
  return cfg;
}

std::string display_name(const std::string& algo_key) {
  static const std::map<std::string, std::string> names = {
      {"pdsl", "PDSL"},           {"pdsl_uniform", "PDSL-uniform"},
      {"dp_dpsgd", "DP-DPSGD"},   {"muffliato", "MUFFLIATO"},
      {"dp_cga", "DP-CGA"},       {"dp_netfleet", "DP-NET-FLEET"},
      {"dpsgd", "D-PSGD"},        {"dmsgd", "DMSGD"},
      {"async_dp_gossip", "ASYNC-DP-GOSSIP"}, {"dp_qgm", "DP-QGM"},
      {"pdsl_relu", "PDSL-relu"},             {"pdsl_robust", "PDSL-robust"},
      {"fedavg", "FEDAVG"},                   {"dp_fedavg", "DP-FEDAVG"}};
  const auto it = names.find(algo_key);
  return it == names.end() ? algo_key : it->second;
}

json::Value fault_config_json(const core::ExperimentConfig& cfg) {
  // Report the plan a Network built from this config would actually run
  // (the legacy drop_prob alias folded in), not the raw struct.
  sim::FaultPlan plan = cfg.faults;
  if (plan.drop_prob == 0.0) plan.drop_prob = cfg.drop_prob;
  return sim::fault_plan_to_json(plan);
}

// ---------------------------------------------------------------------------
// S-BENCH360 envelope
// ---------------------------------------------------------------------------

json::Value build_info_json() {
  json::Object b;
#ifdef PDSL_COMPILER_ID
  b["compiler"] = std::string(PDSL_COMPILER_ID);
#else
  b["compiler"] = std::string("unknown");
#endif
#ifdef PDSL_COMPILER_VERSION
  b["compiler_version"] = std::string(PDSL_COMPILER_VERSION);
#else
  b["compiler_version"] = std::string("unknown");
#endif
#ifdef PDSL_BUILD_TYPE
  b["build_type"] = std::string(PDSL_BUILD_TYPE);
#else
  b["build_type"] = std::string("unknown");
#endif
#ifdef PDSL_NATIVE_BUILD
  b["pdsl_native"] = true;
#else
  b["pdsl_native"] = false;
#endif
  return json::Value(std::move(b));
}

json::Value host_info_json() {
  json::Object h;
  h["hardware_concurrency"] =
      static_cast<std::size_t>(std::thread::hardware_concurrency());
  return json::Value(std::move(h));
}

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::size_t current_heap_bytes() {
#if defined(__GLIBC__) && (__GLIBC__ > 2 || (__GLIBC__ == 2 && __GLIBC_MINOR__ >= 33))
  const struct mallinfo2 mi = mallinfo2();
  return static_cast<std::size_t>(mi.uordblks);
#else
  return 0;
#endif
}

json::Value memory_info_json() {
  json::Object m;
  m["peak_rss_bytes"] = peak_rss_bytes();
  m["heap_bytes"] = current_heap_bytes();
  return json::Value(std::move(m));
}

std::string bench_git_rev() {
  if (const char* env = std::getenv("PDSL_GIT_REV")) return env;
#ifdef PDSL_GIT_REV
  return PDSL_GIT_REV;
#else
  return "unknown";
#endif
}

json::Value phase_histograms_json() {
  const json::Value snap = obs::MetricsRegistry::global().to_json();
  json::Object out;
  if (snap.contains("histograms")) {
    for (const auto& [name, h] : snap.at("histograms").as_object()) {
      if (name.rfind("phase.", 0) == 0) out[name] = h;
    }
  }
  return json::Value(std::move(out));
}

BenchEnvelope::BenchEnvelope(std::string bench_id, std::string kind)
    : bench_id_(std::move(bench_id)),
      kind_(std::move(kind)),
      faults_(json::Object{}),
      adversary_(json::Object{}) {}

void BenchEnvelope::set_config(json::Object cfg) { config_ = std::move(cfg); }
void BenchEnvelope::set_faults(json::Value faults) { faults_ = std::move(faults); }
void BenchEnvelope::set_adversary(json::Value adversary) {
  adversary_ = std::move(adversary);
}
void BenchEnvelope::set_acceptance(json::Object acceptance) {
  acceptance_ = std::move(acceptance);
  has_acceptance_ = true;
}

void BenchEnvelope::add_metric_sample(const std::string& name, const std::string& unit,
                                      double value) {
  auto& series = metrics_[name];
  series.unit = unit;
  series.samples.push_back(value);
}

void BenchEnvelope::add_run(json::Object run) {
  runs_.push_back(json::Value(std::move(run)));
}

json::Value BenchEnvelope::to_json() const {
  json::Object o;
  o["schema_version"] = 1;
  o["bench"] = bench_id_;
  o["kind"] = kind_;
  o["git_rev"] = bench_git_rev();
  o["build"] = build_info_json();
  o["host"] = host_info_json();
  o["repeats"] = 1;  // >1 only in driver-merged files
  o["config"] = json::Value(config_);
  o["faults"] = faults_;
  o["adversary"] = adversary_;
  json::Object metrics;
  for (const auto& [name, series] : metrics_) {
    std::vector<double> sorted = series.samples;
    std::sort(sorted.begin(), sorted.end());
    json::Object m;
    m["unit"] = series.unit;
    m["min"] = sorted.front();
    m["max"] = sorted.back();
    const std::size_t n = sorted.size();
    m["median"] = n % 2 == 1 ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    json::Array samples;
    for (const double s : series.samples) samples.push_back(json::Value(s));
    m["samples"] = json::Value(std::move(samples));
    metrics[name] = json::Value(std::move(m));
  }
  o["metrics"] = json::Value(std::move(metrics));
  o["memory"] = memory_info_json();  // S-SCALE: safe schema-v1 addition
  o["phases"] = phase_histograms_json();
  o["runs"] = json::Value(runs_);
  if (has_acceptance_) o["acceptance"] = json::Value(acceptance_);
  return json::Value(std::move(o));
}

bool BenchEnvelope::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot write %s\n", bench_id_.c_str(), path.c_str());
    return false;
  }
  const std::string s = to_json().dump(2);
  std::fwrite(s.data(), 1, s.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

namespace {

struct ParsedCommon {
  std::string scale;
  ScaleParams sp;
  std::vector<std::int64_t> agents;
  std::vector<double> epsilons;
  std::uint64_t seed;
  std::size_t threads = 1;     ///< S-RT width (1=sequential, 0=auto-detect)
  bool profile = false;        ///< print per-phase breakdown per run
  std::string trace_out;       ///< Chrome trace sink for the whole sweep
};

ParsedCommon parse_common(const CliArgs& args, SweepSpec& spec) {
  ParsedCommon pc;
  pc.scale = args.get_string("scale", "quick");
  pc.sp = scale_params(pc.scale, spec.dataset);
  // Per-flag overrides.
  pc.sp.rounds = static_cast<std::size_t>(args.get_int("rounds", static_cast<std::int64_t>(pc.sp.rounds)));
  pc.sp.train_samples = static_cast<std::size_t>(args.get_int("train", static_cast<std::int64_t>(pc.sp.train_samples)));
  pc.sp.image = static_cast<std::size_t>(args.get_int("image", static_cast<std::int64_t>(pc.sp.image)));
  pc.sp.batch = static_cast<std::size_t>(args.get_int("batch", static_cast<std::int64_t>(pc.sp.batch)));
  pc.sp.model = args.get_string("model", pc.sp.model);
  pc.sp.shapley_permutations = static_cast<std::size_t>(
      args.get_int("mc_perms", static_cast<std::int64_t>(pc.sp.shapley_permutations)));
  pc.sp.validation_batch = static_cast<std::size_t>(
      args.get_int("valbatch", static_cast<std::int64_t>(pc.sp.validation_batch)));
  pc.sp.print_every = static_cast<std::size_t>(
      args.get_int("print_every", static_cast<std::int64_t>(pc.sp.print_every)));
  pc.sp.noise_scale = args.get_double("noise_scale", pc.sp.noise_scale);
  spec.gamma = args.get_double("gamma", spec.gamma);
  spec.alpha = args.get_double("alpha", spec.alpha);
  pc.agents = args.get_int_list("agents", pc.sp.agents);
  pc.epsilons = args.get_double_list("eps", spec.epsilons);
  pc.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  pc.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  pc.profile = args.get_bool("profile", false);
  pc.trace_out = args.get_string("trace-out", args.get_string("trace_out", ""));
  if (!pc.trace_out.empty()) obs::TraceRecorder::global().enable(true);
  return pc;
}

/// Per-run profile line + accumulated sweep totals.
void print_profile(const core::ExperimentResult& res, std::size_t rounds) {
  const auto& p = res.phase_totals;
  std::printf(
      "     phases(ms/round): local_grad=%.2f crossgrad=%.2f shapley=%.2f "
      "aggregate=%.2f gossip=%.2f\n",
      1e3 * p.local_grad_s / static_cast<double>(rounds),
      1e3 * p.crossgrad_s / static_cast<double>(rounds),
      1e3 * p.shapley_s / static_cast<double>(rounds),
      1e3 * p.aggregate_s / static_cast<double>(rounds),
      1e3 * p.gossip_s / static_cast<double>(rounds));
}

/// Common envelope config block for the figure/table sweeps.
json::Object sweep_config_json(const SweepSpec& spec, const ParsedCommon& pc) {
  json::Object c;
  c["dataset"] = spec.dataset;
  c["topology"] = spec.topology;
  c["scale"] = pc.scale;
  c["model"] = pc.sp.model;
  c["image"] = pc.sp.image;
  c["rounds"] = pc.sp.rounds;
  c["train_samples"] = pc.sp.train_samples;
  c["batch"] = pc.sp.batch;
  c["shapley_permutations"] = pc.sp.shapley_permutations;
  c["noise_scale"] = pc.sp.noise_scale;
  c["seed"] = pc.seed;
  c["threads"] = pc.threads;
  json::Array agents;
  for (const auto m : pc.agents) agents.push_back(json::Value(m));
  c["agents"] = json::Value(std::move(agents));
  json::Array eps;
  for (const double e : pc.epsilons) eps.push_back(json::Value(e));
  c["epsilons"] = json::Value(std::move(eps));
  return c;
}

/// End-of-bench reporting: the sweep-wide phase table and the trace file.
void finish_obs(const ParsedCommon& pc, const obs::PhaseTimings& totals,
                std::size_t total_rounds) {
  if (pc.profile) {
    std::printf("\n-- sweep phase breakdown (%zu algorithm-rounds) --\n%s", total_rounds,
                obs::format_phase_table(totals, total_rounds).c_str());
  }
  if (!pc.trace_out.empty()) {
    obs::TraceRecorder::global().write(pc.trace_out);
    std::printf("trace written to %s (%zu events)\n", pc.trace_out.c_str(),
                obs::TraceRecorder::global().size());
  }
}

}  // namespace

int run_figure_bench(int argc, const char* const* argv, const SweepSpec& spec_in) {
  SweepSpec spec = spec_in;
  const CliArgs args(argc, argv, kFlags);
  auto pc = parse_common(args, spec);

  std::printf("==== %s: %s ====\n", spec.id.c_str(), spec.title.c_str());
  std::printf("scale=%s model=%s image=%zu rounds=%zu train=%zu batch=%zu threads=%zu\n",
              pc.scale.c_str(), pc.sp.model.c_str(), pc.sp.image, pc.sp.rounds,
              pc.sp.train_samples, pc.sp.batch, pc.threads);

  CsvWriter csv(csv_path(spec.id),
                {"figure", "dataset", "topology", "agents", "epsilon", "algorithm", "threads",
                 "round", "avg_loss", "test_accuracy", "consensus"});
  Stopwatch total;
  obs::PhaseTimings phase_totals;
  std::size_t total_rounds = 0;
  BenchEnvelope env(spec.id, "figure");
  env.set_config(sweep_config_json(spec, pc));

  for (const auto m : pc.agents) {
    for (const double eps : pc.epsilons) {
      std::printf("\n-- %s  M=%lld  epsilon=%.3g  (%s graph) --\n", spec.id.c_str(),
                  static_cast<long long>(m), eps, spec.topology.c_str());
      std::map<std::string, core::ExperimentResult> results;
      for (const auto& algo : core::paper_algorithms()) {
        auto cfg = make_config(spec, pc.sp, static_cast<std::size_t>(m), eps, pc.seed);
        cfg.algorithm = algo;
        cfg.threads = pc.threads;
        env.set_faults(fault_config_json(cfg));
        Stopwatch sw;
        results[algo] = core::run_experiment(cfg);
        const double seconds = sw.elapsed_seconds();
        std::printf("   %-13s sigma=%-8.4g final_loss=%-8.4g final_acc=%.3f  (%.1fs)\n",
                    display_name(algo).c_str(), results[algo].sigma,
                    results[algo].final_loss, results[algo].final_accuracy, seconds);
        if (pc.profile) print_profile(results[algo], pc.sp.rounds);
        phase_totals += results[algo].phase_totals;
        total_rounds += pc.sp.rounds;
        for (const auto& rm : results[algo].series) {
          csv.row(spec.id, spec.dataset, spec.topology, m, eps, display_name(algo), pc.threads,
                  rm.round, rm.avg_loss, rm.test_accuracy, rm.consensus);
        }
        csv.flush();
        const auto& res = results[algo];
        env.add_metric_sample(algo + ".final_loss", "loss", res.final_loss);
        env.add_metric_sample(algo + ".final_accuracy", "accuracy", res.final_accuracy);
        env.add_metric_sample(algo + ".epsilon_spent", "epsilon", res.epsilon_spent);
        env.add_metric_sample(algo + ".run_seconds", "s", seconds);
        json::Object run;
        run["agents"] = m;
        run["epsilon"] = eps;
        run["algorithm"] = algo;
        run["sigma"] = res.sigma;
        run["final_loss"] = res.final_loss;
        run["final_accuracy"] = res.final_accuracy;
        run["epsilon_spent"] = res.epsilon_spent;
        run["seconds"] = seconds;
        env.add_run(std::move(run));
      }
      // Paper-style series: average loss vs communication round.
      std::printf("   round");
      for (const auto& algo : core::paper_algorithms()) {
        std::printf(" %13s", display_name(algo).c_str());
      }
      std::printf("\n");
      const std::size_t rounds = results.begin()->second.series.size();
      const std::size_t step = std::max<std::size_t>(1, pc.sp.print_every);
      for (std::size_t r = 0; r < rounds; r += step) {
        std::printf("   %5zu", r + 1);
        for (const auto& algo : core::paper_algorithms()) {
          std::printf(" %13.4f", results[algo].series[r].avg_loss);
        }
        std::printf("\n");
      }
    }
  }
  finish_obs(pc, phase_totals, total_rounds);
  if (!env.write(args.get_string("out", "BENCH_" + spec.id + ".json"))) return 1;
  std::printf("\n%s done in %.1fs; series in %s\n", spec.id.c_str(), total.elapsed_seconds(),
              csv_path(spec.id).c_str());
  return 0;
}

int run_table_bench(int argc, const char* const* argv, SweepSpec spec,
                    const std::vector<std::string>& topologies) {
  const CliArgs args(argc, argv, kFlags);
  auto pc = parse_common(args, spec);

  std::printf("==== %s: %s ====\n", spec.id.c_str(), spec.title.c_str());
  std::printf("scale=%s model=%s image=%zu rounds=%zu threads=%zu\n", pc.scale.c_str(),
              pc.sp.model.c_str(), pc.sp.image, pc.sp.rounds, pc.threads);

  CsvWriter csv(csv_path(spec.id), {"table", "dataset", "topology", "agents", "epsilon",
                                    "algorithm", "threads", "test_accuracy", "final_loss",
                                    "sigma"});
  Stopwatch total;
  obs::PhaseTimings phase_totals;
  std::size_t total_rounds = 0;
  BenchEnvelope env(spec.id, "table");
  env.set_config(sweep_config_json(spec, pc));

  for (const double eps : pc.epsilons) {
    std::printf("\nepsilon = %.3g\n", eps);
    std::printf("%-13s", "method");
    for (const auto& topo : topologies) {
      for (const auto m : pc.agents) {
        std::printf("  %s/M=%-3lld", topo.substr(0, 4).c_str(), static_cast<long long>(m));
      }
    }
    std::printf("\n");
    for (const auto& algo : core::paper_algorithms()) {
      std::printf("%-13s", display_name(algo).c_str());
      for (const auto& topo : topologies) {
        for (const auto m : pc.agents) {
          spec.topology = topo;
          auto cfg = make_config(spec, pc.sp, static_cast<std::size_t>(m), eps, pc.seed);
          cfg.algorithm = algo;
          cfg.threads = pc.threads;
          env.set_faults(fault_config_json(cfg));
          Stopwatch sw;
          const auto res = core::run_experiment(cfg);
          const double seconds = sw.elapsed_seconds();
          phase_totals += res.phase_totals;
          total_rounds += pc.sp.rounds;
          std::printf("  %9.3f", res.final_accuracy);
          std::fflush(stdout);
          csv.row(spec.id, spec.dataset, topo, m, eps, display_name(algo), pc.threads,
                  res.final_accuracy, res.final_loss, res.sigma);
          csv.flush();
          env.add_metric_sample(algo + ".final_accuracy", "accuracy", res.final_accuracy);
          env.add_metric_sample(algo + ".final_loss", "loss", res.final_loss);
          env.add_metric_sample(algo + ".epsilon_spent", "epsilon", res.epsilon_spent);
          env.add_metric_sample(algo + ".run_seconds", "s", seconds);
          json::Object run;
          run["topology"] = topo;
          run["agents"] = m;
          run["epsilon"] = eps;
          run["algorithm"] = algo;
          run["sigma"] = res.sigma;
          run["final_loss"] = res.final_loss;
          run["final_accuracy"] = res.final_accuracy;
          run["epsilon_spent"] = res.epsilon_spent;
          run["seconds"] = seconds;
          env.add_run(std::move(run));
        }
      }
      std::printf("\n");
    }
  }
  finish_obs(pc, phase_totals, total_rounds);
  if (!env.write(args.get_string("out", "BENCH_" + spec.id + ".json"))) return 1;
  std::printf("\n%s done in %.1fs; rows in %s\n", spec.id.c_str(), total.elapsed_seconds(),
              csv_path(spec.id).c_str());
  return 0;
}

}  // namespace pdsl::bench
