// Microbenchmarks for the hot kernels underneath the experiments. Two parts:
//
//  1. The S-KER naive-vs-blocked-vs-vectorized sweep (default): GEMM and
//     convolution timings at the MNIST-CNN and CIFAR-CNN layer shapes,
//     written as a speedup table to BENCH_kernels.json (override with
//     --out). Two acceptance signals: the blocked conv forward+backward
//     speedup at the CIFAR-CNN shapes (S-KER) and the vectorized
//     single-thread speedup at the square GEMM shapes, gated at >= 1.3x
//     (S-VEC; waived, and recorded as such, when the host has a single
//     core). `--threads N` additionally times the blocked backend at an
//     intra-op width of N (top-level kernels only; inside the round loop's
//     per-agent phases kernels stay sequential).
//     Flags: --out <path> --reps <n> --threads <n>
//
//  2. The original google-benchmark suite (matmul, model gradients, DP
//     mechanism, Shapley, QP, gossip): pass --gbench to run it (with
//     google-benchmark's default options).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "dp/mechanism.hpp"
#include "graph/mixing.hpp"
#include "kernels/backend.hpp"
#include "kernels/gemm.hpp"
#include "nn/conv2d.hpp"
#include "nn/model_zoo.hpp"
#include "optim/qp.hpp"
#include "runtime/parallel_for.hpp"
#include "shapley/game.hpp"
#include "shapley/shapley.hpp"
#include "tensor/ops.hpp"

using namespace pdsl;

// ---------------------------------------------------------------------------
// S-KER sweep
// ---------------------------------------------------------------------------

namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  rng.fill_normal(v, 0.0, 1.0);
  return v;
}

/// Best-of-3 trials of `reps` calls each; returns ms per call.
template <typename F>
double time_ms(std::size_t reps, F&& fn) {
  double best = 1e30;
  for (int trial = 0; trial < 3; ++trial) {
    Stopwatch sw;
    for (std::size_t r = 0; r < reps; ++r) fn();
    best = std::min(best, sw.elapsed_ms() / static_cast<double>(reps));
  }
  return best;
}

struct SweepRow {
  std::string name;
  std::string kind;   // "gemm" | "conv"
  std::string shape;  // human-readable
  double naive_ms = 0.0;
  double blocked_ms = 0.0;
  double vec_ms = 0.0;         // S-VEC register-tiled backend
  double blocked_mt_ms = 0.0;  // blocked at --threads width (0 = not run)
};

struct GemmShape {
  const char* name;
  std::size_t m, k, n;
};

struct ConvShape {
  const char* name;
  std::size_t batch, in_ch, out_ch, k, pad, image;
};

// The two CNNs of the paper's evaluation (model_zoo): conv layer geometries
// at their bench batch size, plus the fully-connected heads as GEMM shapes.
const GemmShape kGemmShapes[] = {
    {"gemm_square_64", 64, 64, 64},
    {"gemm_square_128", 128, 128, 128},
    {"gemm_square_256", 256, 256, 256},
    {"gemm_mnist_fc", 32, 144, 10},   // Linear(16*3*3 -> 10), batch 32
    {"gemm_cifar_fc1", 32, 256, 64},  // Linear(16*4*4 -> 64), batch 32
};

const ConvShape kConvShapes[] = {
    {"conv_mnist_l1", 32, 1, 8, 3, 1, 14},   // make_mnist_cnn(14): conv1
    {"conv_mnist_l2", 32, 8, 16, 3, 1, 7},   // conv2 after pool
    {"conv_cifar_l1", 32, 3, 8, 5, 2, 16},   // make_cifar_cnn(16): conv1
    {"conv_cifar_l2", 32, 8, 16, 5, 2, 8},   // conv2 after pool
};

double run_gemm_once(const GemmShape& s, const std::vector<float>& a,
                     const std::vector<float>& b, std::vector<float>& c) {
  kernels::sgemm(s.m, s.k, s.n, a.data(), b.data(), c.data());
  return static_cast<double>(c[0]);
}

SweepRow sweep_gemm(const GemmShape& s, std::size_t reps, std::size_t threads) {
  const auto a = random_vec(s.m * s.k, 1);
  const auto b = random_vec(s.k * s.n, 2);
  std::vector<float> c(s.m * s.n);
  SweepRow row;
  row.name = s.name;
  row.kind = "gemm";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%zux%zux%zu", s.m, s.k, s.n);
  row.shape = buf;
  runtime::set_global_threads(1);
  kernels::set_backend(kernels::Backend::kNaive);
  row.naive_ms = time_ms(reps, [&] { benchmark::DoNotOptimize(run_gemm_once(s, a, b, c)); });
  kernels::set_backend(kernels::Backend::kBlocked);
  row.blocked_ms = time_ms(reps, [&] { benchmark::DoNotOptimize(run_gemm_once(s, a, b, c)); });
  kernels::set_backend(kernels::Backend::kVectorized);
  row.vec_ms = time_ms(reps, [&] { benchmark::DoNotOptimize(run_gemm_once(s, a, b, c)); });
  if (threads > 1) {
    kernels::set_backend(kernels::Backend::kBlocked);
    runtime::set_global_threads(threads);
    row.blocked_mt_ms =
        time_ms(reps, [&] { benchmark::DoNotOptimize(run_gemm_once(s, a, b, c)); });
    runtime::set_global_threads(1);
  }
  return row;
}

SweepRow sweep_conv(const ConvShape& s, std::size_t reps, std::size_t threads) {
  nn::Conv2D conv(s.in_ch, s.out_ch, s.k, s.pad);
  Rng rng(3);
  conv.init(rng);
  Tensor x(Shape{s.batch, s.in_ch, s.image, s.image},
           random_vec(s.batch * s.in_ch * s.image * s.image, 4));
  const Shape out_shape = conv.output_shape(x.shape());
  Tensor gy(out_shape, random_vec(shape_numel(out_shape), 5));
  // One rep = forward + backward, the unit of work every SGD step pays per
  // layer. Parameter grads are cleared each rep so they cannot drift to inf.
  auto step = [&] {
    for (nn::Param* p : conv.params()) p->grad.zero();
    const Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(conv.backward(gy));
    benchmark::DoNotOptimize(y[0]);
  };
  SweepRow row;
  row.name = s.name;
  row.kind = "conv";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "b%zu %zux%zux%zu k%zu p%zu -> %zuch", s.batch, s.in_ch,
                s.image, s.image, s.k, s.pad, s.out_ch);
  row.shape = buf;
  runtime::set_global_threads(1);
  kernels::set_backend(kernels::Backend::kNaive);
  row.naive_ms = time_ms(reps, step);
  kernels::set_backend(kernels::Backend::kBlocked);
  row.blocked_ms = time_ms(reps, step);
  kernels::set_backend(kernels::Backend::kVectorized);
  row.vec_ms = time_ms(reps, step);
  if (threads > 1) {
    kernels::set_backend(kernels::Backend::kBlocked);
    runtime::set_global_threads(threads);
    row.blocked_mt_ms = time_ms(reps, step);
    runtime::set_global_threads(1);
  }
  return row;
}

int run_kernel_sweep(const CliArgs& args) {
  const std::string out_path = args.get_string("out", "BENCH_kernels.json");
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 20));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));
  const kernels::Backend entry_backend = kernels::backend();

  std::printf(
      "==== bench_micro_kernels: naive vs blocked vs vectorized (reps=%zu, threads=%zu) "
      "====\n",
      reps, threads);
  std::printf("%-16s %-24s %12s %12s %12s %9s %9s\n", "kernel", "shape", "naive_ms",
              "blocked_ms", "vec_ms", "blk_spd", "vec_spd");

  std::vector<SweepRow> rows;
  for (const auto& s : kGemmShapes) rows.push_back(sweep_gemm(s, reps, threads));
  for (const auto& s : kConvShapes) rows.push_back(sweep_conv(s, reps, threads));
  kernels::set_backend(entry_backend);

  pdsl::bench::BenchEnvelope env("kernels", "micro");
  {
    pdsl::json::Object c;
    c["reps"] = reps;
    c["threads"] = threads;
    c["conv_unit"] = std::string("forward+backward per batch");
    env.set_config(std::move(c));
  }

  double cifar_conv_min_speedup = 1e30;
  double square_gemm_vec_min_speedup = 1e30;
  for (const auto& r : rows) {
    const double speedup = r.blocked_ms > 0 ? r.naive_ms / r.blocked_ms : 0.0;
    const double vec_speedup = r.vec_ms > 0 ? r.naive_ms / r.vec_ms : 0.0;
    if (r.name.rfind("conv_cifar", 0) == 0) {
      cifar_conv_min_speedup = std::min(cifar_conv_min_speedup, speedup);
    }
    if (r.name.rfind("gemm_square", 0) == 0) {
      square_gemm_vec_min_speedup = std::min(square_gemm_vec_min_speedup, vec_speedup);
    }
    std::printf("%-16s %-24s %12.4f %12.4f %12.4f %8.2fx %8.2fx\n", r.name.c_str(),
                r.shape.c_str(), r.naive_ms, r.blocked_ms, r.vec_ms, speedup, vec_speedup);
    env.add_metric_sample(r.name + ".naive_ms", "ms", r.naive_ms);
    env.add_metric_sample(r.name + ".blocked_ms", "ms", r.blocked_ms);
    env.add_metric_sample(r.name + ".vec_ms", "ms", r.vec_ms);
    env.add_metric_sample(r.name + ".speedup", "x", speedup);
    env.add_metric_sample(r.name + ".vec_speedup", "x", vec_speedup);
    pdsl::json::Object o;
    o["name"] = r.name;
    o["kind"] = r.kind;
    o["shape"] = r.shape;
    o["naive_ms"] = r.naive_ms;
    o["blocked_ms"] = r.blocked_ms;
    o["vec_ms"] = r.vec_ms;
    o["speedup"] = speedup;
    o["vec_speedup"] = vec_speedup;
    if (r.blocked_mt_ms > 0) {
      o["blocked_mt_ms"] = r.blocked_mt_ms;
      o["speedup_mt_vs_naive"] = r.naive_ms / r.blocked_mt_ms;
    }
    env.add_run(std::move(o));
  }
  env.add_metric_sample("cifar_conv_min_speedup", "x", cifar_conv_min_speedup);
  env.add_metric_sample("square_gemm_vec_min_speedup", "x", square_gemm_vec_min_speedup);

  // Two acceptance contracts. S-KER: blocked conv must beat naive at the
  // CIFAR-CNN shapes. S-VEC: the register-tiled backend must clear 1.3x over
  // naive on the square GEMM shapes single-threaded — except on a single-core
  // host, where scheduler contention makes the timing unreliable; there the
  // gate is waived and the waiver recorded in the envelope.
  const unsigned host_cores = std::thread::hardware_concurrency();
  const bool vec_gate_met = square_gemm_vec_min_speedup >= 1.3;
  const bool vec_gate_waived = !vec_gate_met && host_cores <= 1;
  pdsl::json::Object gate;
  gate["cifar_conv_min_speedup"] = cifar_conv_min_speedup;
  gate["square_gemm_vec_min_speedup"] = square_gemm_vec_min_speedup;
  gate["square_gemm_vec_threshold"] = 1.3;
  gate["host_cores"] = static_cast<std::size_t>(host_cores);
  gate["vec_gate_waived_single_core"] = vec_gate_waived;
  gate["passed"] = cifar_conv_min_speedup > 1.0 && (vec_gate_met || vec_gate_waived);
  env.set_acceptance(std::move(gate));
  if (!env.write(out_path)) return 1;
  std::printf("cifar conv min speedup: %.2fx\n", cifar_conv_min_speedup);
  std::printf("square gemm vectorized min speedup: %.2fx (gate >=1.3x: %s)\n",
              square_gemm_vec_min_speedup,
              vec_gate_met ? "passed" : (vec_gate_waived ? "waived, 1-core host" : "FAILED"));
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// google-benchmark suite (run with --gbench)
// ---------------------------------------------------------------------------

static void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a(Shape{n, n}), b(Shape{n, n});
  rng.fill_normal(a.vec(), 0.0, 1.0);
  rng.fill_normal(b.vec(), 0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

static void BM_MnistCnnGradient(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::Model m = nn::make_mnist_cnn(14, 1, 10);
  m.init(rng);
  Tensor x(Shape{batch, 1, 14, 14});
  rng.fill_normal(x.vec(), 0.0, 1.0);
  std::vector<int> y(batch);
  for (std::size_t i = 0; i < batch; ++i) y[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.loss_and_backward(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MnistCnnGradient)->Arg(8)->Arg(32);

static void BM_MlpGradient(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  nn::Model m = nn::make_mlp(100, 32, 10);
  m.init(rng);
  Tensor x(Shape{batch, 1, 10, 10});
  rng.fill_normal(x.vec(), 0.0, 1.0);
  std::vector<int> y(batch);
  for (std::size_t i = 0; i < batch; ++i) y[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.loss_and_backward(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MlpGradient)->Arg(16)->Arg(64)->Arg(256);

static void BM_Privatize(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<float> g(d);
  rng.fill_normal(g, 0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::privatize(g, 1.0, 0.1, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d));
}
BENCHMARK(BM_Privatize)->Arg(1000)->Arg(10000)->Arg(100000);

static void BM_MonteCarloShapley(benchmark::State& state) {
  const auto players = static_cast<std::size_t>(state.range(0));
  const auto perms = static_cast<std::size_t>(state.range(1));
  Rng rng(5);
  for (auto _ : state) {
    shapley::CachedGame game(players, [](const std::vector<std::size_t>& c) {
      double v = 0.0;
      for (std::size_t p : c) v += static_cast<double>(p + 1);
      return v / 100.0;
    });
    benchmark::DoNotOptimize(shapley::monte_carlo_shapley(game, perms, rng));
  }
}
BENCHMARK(BM_MonteCarloShapley)->Args({6, 8})->Args({10, 8})->Args({20, 10});

static void BM_ExactShapley(benchmark::State& state) {
  const auto players = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    shapley::CachedGame game(players, [](const std::vector<std::size_t>& c) {
      double v = 0.0;
      for (std::size_t p : c) v += static_cast<double>(p + 1);
      return v / 100.0;
    });
    benchmark::DoNotOptimize(shapley::exact_shapley(game));
  }
}
BENCHMARK(BM_ExactShapley)->Arg(4)->Arg(8)->Arg(12);

static void BM_MinNormQp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<std::vector<float>> grads(n, std::vector<float>(512));
  for (auto& g : grads) rng.fill_normal(g, 0.0, 1.0);
  optim::MinNormSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(grads));
  }
}
BENCHMARK(BM_MinNormQp)->Arg(5)->Arg(10)->Arg(20);

static void BM_GossipMix(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto topo = graph::Topology::make(graph::TopologyKind::kRing, m);
  const auto w = graph::MixingMatrix::metropolis(topo);
  std::vector<double> x(m, 1.0);
  x[0] = static_cast<double>(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = w.apply(x));
  }
}
BENCHMARK(BM_GossipMix)->Arg(10)->Arg(50)->Arg(200);

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"out", "reps", "threads", "gbench"});
  const int rc = run_kernel_sweep(args);
  if (rc != 0) return rc;
  if (args.get_bool("gbench", false)) {
    int bench_argc = 1;
    benchmark::Initialize(&bench_argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
