// Microbenchmarks (google-benchmark) for the hot kernels underneath the
// experiments: matmul, conv forward/backward, full model gradients, clipping
// + Gaussian mechanism, Monte Carlo Shapley, the min-norm QP and gossip
// mixing. These are throughput references, not paper artifacts.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "dp/mechanism.hpp"
#include "graph/mixing.hpp"
#include "nn/model_zoo.hpp"
#include "optim/qp.hpp"
#include "shapley/game.hpp"
#include "shapley/shapley.hpp"
#include "tensor/ops.hpp"

using namespace pdsl;

static void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a(Shape{n, n}), b(Shape{n, n});
  rng.fill_normal(a.vec(), 0.0, 1.0);
  rng.fill_normal(b.vec(), 0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

static void BM_MnistCnnGradient(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::Model m = nn::make_mnist_cnn(14, 1, 10);
  m.init(rng);
  Tensor x(Shape{batch, 1, 14, 14});
  rng.fill_normal(x.vec(), 0.0, 1.0);
  std::vector<int> y(batch);
  for (std::size_t i = 0; i < batch; ++i) y[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.loss_and_backward(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MnistCnnGradient)->Arg(8)->Arg(32);

static void BM_MlpGradient(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  nn::Model m = nn::make_mlp(100, 32, 10);
  m.init(rng);
  Tensor x(Shape{batch, 1, 10, 10});
  rng.fill_normal(x.vec(), 0.0, 1.0);
  std::vector<int> y(batch);
  for (std::size_t i = 0; i < batch; ++i) y[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.loss_and_backward(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MlpGradient)->Arg(16)->Arg(64)->Arg(256);

static void BM_Privatize(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<float> g(d);
  rng.fill_normal(g, 0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::privatize(g, 1.0, 0.1, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d));
}
BENCHMARK(BM_Privatize)->Arg(1000)->Arg(10000)->Arg(100000);

static void BM_MonteCarloShapley(benchmark::State& state) {
  const auto players = static_cast<std::size_t>(state.range(0));
  const auto perms = static_cast<std::size_t>(state.range(1));
  Rng rng(5);
  for (auto _ : state) {
    shapley::CachedGame game(players, [](const std::vector<std::size_t>& c) {
      double v = 0.0;
      for (std::size_t p : c) v += static_cast<double>(p + 1);
      return v / 100.0;
    });
    benchmark::DoNotOptimize(shapley::monte_carlo_shapley(game, perms, rng));
  }
}
BENCHMARK(BM_MonteCarloShapley)->Args({6, 8})->Args({10, 8})->Args({20, 10});

static void BM_ExactShapley(benchmark::State& state) {
  const auto players = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    shapley::CachedGame game(players, [](const std::vector<std::size_t>& c) {
      double v = 0.0;
      for (std::size_t p : c) v += static_cast<double>(p + 1);
      return v / 100.0;
    });
    benchmark::DoNotOptimize(shapley::exact_shapley(game));
  }
}
BENCHMARK(BM_ExactShapley)->Arg(4)->Arg(8)->Arg(12);

static void BM_MinNormQp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<std::vector<float>> grads(n, std::vector<float>(512));
  for (auto& g : grads) rng.fill_normal(g, 0.0, 1.0);
  optim::MinNormSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(grads));
  }
}
BENCHMARK(BM_MinNormQp)->Arg(5)->Arg(10)->Arg(20);

static void BM_GossipMix(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto topo = graph::Topology::make(graph::TopologyKind::kRing, m);
  const auto w = graph::MixingMatrix::metropolis(topo);
  std::vector<double> x(m, 1.0);
  x[0] = static_cast<double>(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = w.apply(x));
  }
}
BENCHMARK(BM_GossipMix)->Arg(10)->Arg(50)->Arg(200);

BENCHMARK_MAIN();
