// Ablation A3: noise calibration. Prints, across topologies x agent counts x
// privacy budgets, the Theorem-1 sigma bound versus the per-round DP-SGD
// Gaussian-mechanism sigma, plus composed privacy over T rounds from the
// accountant. Pure computation (no training) — fast at any scale.

#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "dp/accountant.hpp"
#include "dp/calibration.hpp"
#include "dp/mechanism.hpp"
#include "graph/spectral.hpp"

using namespace pdsl;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"agents", "eps", "delta", "clip", "batch", "rounds", "phimin", "out"});
  const auto agent_counts = args.get_int_list("agents", {10, 15, 20});
  const auto epsilons = args.get_double_list("eps", {0.08, 0.1, 0.3, 0.5, 0.7, 1.0});
  const double delta = args.get_double("delta", 1e-3);
  const double clip = args.get_double("clip", 1.0);
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 250));
  const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 180));
  const double phimin = args.get_double("phimin", 0.1);

  std::printf("==== ablation: Theorem-1 sigma vs per-round DP-SGD sigma ====\n");
  std::printf("delta=%.1e clip=%.2f batch=%zu phi_hat_min=%.2f\n\n", delta, clip, batch, phimin);

  CsvWriter csv("bench_results/ablation_sigma.csv",
                {"topology", "agents", "epsilon", "sigma_theorem1", "sigma_dpsgd", "rho",
                 "omega_min", "sensitivity_theorem1", "eps_total_basic", "eps_total_advanced"});

  bench::BenchEnvelope env("ablation_sigma", "calibration");
  {
    json::Object c;
    c["delta"] = delta;
    c["clip"] = clip;
    c["batch"] = batch;
    c["rounds"] = rounds;
    c["phi_hat_min"] = phimin;
    env.set_config(std::move(c));
  }

  std::printf("%-10s %3s %6s %14s %12s %8s %10s %12s %12s\n", "topology", "M", "eps",
              "sigma_thm1", "sigma_dpsgd", "rho", "omega_min", "T*eps basic", "T eps adv");
  for (const std::string topo_name : {"full", "bipartite", "ring"}) {
    for (const auto m : agent_counts) {
      const auto topo = graph::Topology::make(graph::topology_from_string(topo_name),
                                              static_cast<std::size_t>(m));
      const auto w = graph::MixingMatrix::metropolis(topo);
      const auto info = graph::analyze(w);
      for (const double eps : epsilons) {
        dp::Theorem1Params p;
        p.epsilon = eps;
        p.delta = delta;
        p.clip = clip;
        p.phi_hat_min = phimin;
        const double s_thm = dp::theorem1_sigma(w, p);
        const double s_dpsgd =
            dp::gaussian_sigma(2.0 * clip / static_cast<double>(batch), eps, delta);
        dp::PrivacyAccountant acc;
        acc.record_rounds(eps, delta, rounds);
        const double basic = acc.basic_epsilon();
        const double adv = acc.advanced_epsilon(delta);
        std::printf("%-10s %3lld %6.3g %14.4g %12.4g %8.4f %10.4f %12.4g %12.4g\n",
                    topo_name.c_str(), static_cast<long long>(m), eps, s_thm, s_dpsgd, info.rho,
                    w.min_positive_weight(), basic, adv);
        csv.row(topo_name, m, eps, s_thm, s_dpsgd, info.rho, w.min_positive_weight(),
                dp::theorem1_sensitivity(w, clip), basic, adv);
        env.add_metric_sample(topo_name + ".sigma_theorem1_over_dpsgd", "x",
                              s_dpsgd > 0 ? s_thm / s_dpsgd : 0.0);
        json::Object run;
        run["topology"] = topo_name;
        run["agents"] = m;
        run["epsilon"] = eps;
        run["sigma_theorem1"] = s_thm;
        run["sigma_dpsgd"] = s_dpsgd;
        run["rho"] = info.rho;
        run["omega_min"] = w.min_positive_weight();
        run["eps_total_basic"] = basic;
        run["eps_total_advanced"] = adv;
        env.add_run(std::move(run));
      }
    }
  }
  csv.flush();
  std::printf("\nrows in bench_results/ablation_sigma.csv\n");
  return env.write(args.get_string("out", "BENCH_ablation_sigma.json")) ? 0 : 1;
}
