// Fig. 1: average loss vs communication round on the MNIST-like dataset over
// fully connected graphs, M in {10,15,20}, epsilon in {0.08, 0.1, 0.3}.
// Default --scale quick runs a reduced grid; --scale paper runs the full one.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  pdsl::bench::SweepSpec spec;
  spec.id = "fig1";
  spec.title = "MNIST-like, fully connected graphs: avg loss vs round";
  spec.dataset = "mnist_like";
  spec.topology = "full";
  spec.epsilons = {0.08, 0.1, 0.3};
  return pdsl::bench::run_figure_bench(argc, argv, spec);
}
