// Fig. 2: average loss vs round, MNIST-like dataset over bipartite graphs.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  pdsl::bench::SweepSpec spec;
  spec.id = "fig2";
  spec.title = "MNIST-like, bipartite graphs: avg loss vs round";
  spec.dataset = "mnist_like";
  spec.topology = "bipartite";
  spec.epsilons = {0.08, 0.1, 0.3};
  return pdsl::bench::run_figure_bench(argc, argv, spec);
}
