// Table I: test accuracy on the MNIST-like dataset across
// {fully connected, bipartite, ring} x M x epsilon for all five algorithms.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  pdsl::bench::SweepSpec spec;
  spec.id = "table1";
  spec.title = "MNIST-like test accuracy (paper Table I)";
  spec.dataset = "mnist_like";
  spec.epsilons = {0.08, 0.1, 0.3};
  return pdsl::bench::run_table_bench(argc, argv, spec, {"full", "bipartite", "ring"});
}
