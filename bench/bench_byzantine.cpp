// S-BYZ attacker-fraction sweep: PDSL's Shapley weighting evaluated as a
// native Byzantine defense. For each attacker fraction the sweep runs
// pdsl / pdsl_robust / pdsl_uniform / dp_dpsgd under the same attack and
// records final accuracy plus the mean Shapley-derived aggregation weight pi
// on attacker vs honest edges (averaged over the last 3 rounds; PDSL
// variants only — the gossip baseline has no edge weights).
//
// The run doubles as the PR's acceptance gate: at the 25% sign_flip point it
// asserts (a) pdsl_robust's attacker-edge pi has collapsed below half the
// honest-edge pi by round 10 and (b) plain pdsl's final accuracy beats
// unweighted dp_dpsgd gossip by a clear margin. Exit 1 on violation, so CI
// can run the bench as a contract. Results land in BENCH_byzantine.json
// (override with --out).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "core/experiment.hpp"
#include "sim/faults.hpp"

namespace {

using pdsl::core::ExperimentConfig;
using pdsl::core::ExperimentResult;

ExperimentConfig base_config(const pdsl::CliArgs& args) {
  ExperimentConfig cfg;
  cfg.dataset = "mnist_like";
  cfg.model = "mlp";
  cfg.topology = "full";
  cfg.agents = static_cast<std::size_t>(args.get_int("agents", 8));
  cfg.rounds = static_cast<std::size_t>(args.get_int("rounds", 12));
  cfg.train_samples = static_cast<std::size_t>(args.get_int("train", 900));
  cfg.test_samples = 240;
  cfg.validation_samples = 200;
  cfg.image = 10;
  cfg.hidden = 32;
  cfg.hp.batch = 16;
  cfg.hp.gamma = 0.05;
  cfg.hp.alpha = 0.5;
  cfg.hp.shapley_permutations =
      static_cast<std::size_t>(args.get_int("mc_perms", 8));
  cfg.hp.validation_batch = 64;
  cfg.sigma_mode = "dpsgd";
  cfg.epsilon = 0.3;
  cfg.noise_scale = 0.06;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.metrics.eval_every = cfg.rounds;  // accuracy at the final round only
  cfg.metrics.test_subsample = 240;
  return cfg;
}

/// Mean attacker/honest-edge pi over the trailing `window` rounds (0/0 when
/// the algorithm exposes no split, e.g. the gossip baseline or a clean run).
struct PiSplit {
  double attacker = 0.0;
  double honest = 0.0;
};

PiSplit trailing_pi(const ExperimentResult& res, std::size_t window) {
  PiSplit s;
  if (res.series.size() < window || window == 0) return s;
  for (std::size_t r = res.series.size() - window; r < res.series.size(); ++r) {
    s.attacker += res.series[r].pi_attacker;
    s.honest += res.series[r].pi_honest;
  }
  s.attacker /= static_cast<double>(window);
  s.honest /= static_cast<double>(window);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const pdsl::CliArgs args(argc, argv,
                           {"agents", "rounds", "train", "mc_perms", "seed",
                            "fracs", "mode", "scale", "out"});
  const auto fracs = args.get_double_list("fracs", {0.0, 0.125, 0.25, 0.375});
  const std::string mode_name = args.get_string("mode", "sign_flip");
  const double byz_scale = args.get_double("scale", 3.0);
  const std::string out_path = args.get_string("out", "BENCH_byzantine.json");
  const std::vector<std::string> algos = {"pdsl", "pdsl_robust", "pdsl_uniform",
                                          "dp_dpsgd"};
  ExperimentConfig base = base_config(args);

  std::printf("==== bench_byzantine: %s x%.1f, M=%zu, %zu rounds, seed %llu ====\n",
              mode_name.c_str(), byz_scale, base.agents, base.rounds,
              static_cast<unsigned long long>(base.seed));
  std::printf("%6s %14s | %8s %9s %9s | %10s %9s %9s\n", "frac", "algorithm",
              "acc", "pi_att", "pi_hon", "corrupted", "rejected", "reclipped");

  pdsl::bench::BenchEnvelope env("byzantine", "table");
  {
    pdsl::json::Object c;
    c["dataset"] = base.dataset;
    c["topology"] = base.topology;
    c["agents"] = base.agents;
    c["rounds"] = base.rounds;
    c["byz_mode"] = mode_name;
    c["byz_scale"] = byz_scale;
    c["shapley_permutations"] = base.hp.shapley_permutations;
    c["seed"] = base.seed;
    pdsl::json::Array fs;
    for (const double f : fracs) fs.push_back(pdsl::json::Value(f));
    c["fracs"] = pdsl::json::Value(std::move(fs));
    env.set_config(std::move(c));
  }
  env.set_faults(pdsl::bench::fault_config_json(base));

  double pdsl_acc_25 = -1.0, dpsgd_acc_25 = -1.0;
  double robust_pi_att_r10 = -1.0, robust_pi_hon_r10 = -1.0;
  for (const double frac : fracs) {
    for (const std::string& algo : algos) {
      ExperimentConfig cfg = base;
      cfg.algorithm = algo;
      cfg.adversary.frac = frac;
      cfg.adversary.mode = pdsl::sim::byz_mode_from_string(mode_name);
      cfg.adversary.scale = byz_scale;
      // Record the regime at the largest attacker fraction of the sweep.
      if (frac == fracs.back() && algo == algos.front()) {
        env.set_adversary(pdsl::sim::adversary_plan_to_json(cfg.adversary));
      }
      const ExperimentResult res = pdsl::core::run_experiment(cfg);
      const PiSplit pi = trailing_pi(res, 3);
      std::printf("%6.3f %14s | %8.3f %9.3f %9.3f | %10zu %9zu %9zu\n", frac,
                  algo.c_str(), res.final_accuracy, pi.attacker, pi.honest,
                  res.corrupted, res.rejected, res.reclipped);

      env.add_metric_sample(algo + ".final_accuracy", "accuracy", res.final_accuracy);
      env.add_metric_sample(algo + ".pi_attacker_mean_last3", "weight", pi.attacker);
      env.add_metric_sample(algo + ".pi_honest_mean_last3", "weight", pi.honest);

      pdsl::json::Object row;
      row["frac"] = frac;
      row["algorithm"] = algo;
      row["final_accuracy"] = res.final_accuracy;
      row["final_loss"] = res.final_loss;
      row["epsilon_spent"] = res.epsilon_spent;
      row["pi_attacker_mean_last3"] = pi.attacker;
      row["pi_honest_mean_last3"] = pi.honest;
      row["corrupted"] = res.corrupted;
      row["rejected"] = res.rejected;
      row["reclipped"] = res.reclipped;
      env.add_run(std::move(row));

      if (frac == 0.25 && mode_name == "sign_flip") {
        if (algo == "pdsl") pdsl_acc_25 = res.final_accuracy;
        if (algo == "dp_dpsgd") dpsgd_acc_25 = res.final_accuracy;
        if (algo == "pdsl_robust" && res.series.size() >= 10) {
          robust_pi_att_r10 = res.series[9].pi_attacker;
          robust_pi_hon_r10 = res.series[9].pi_honest;
        }
      }
    }
  }

  // Acceptance contract (mirrors test_byzantine's ShapleyDefense suite).
  bool ok = true;
  if (pdsl_acc_25 >= 0.0 && dpsgd_acc_25 >= 0.0) {
    if (pdsl_acc_25 <= dpsgd_acc_25 + 0.15) {
      std::fprintf(stderr,
                   "CONTRACT VIOLATION: pdsl %.3f vs dp_dpsgd %.3f at 25%% "
                   "sign_flip (need +0.15 margin)\n",
                   pdsl_acc_25, dpsgd_acc_25);
      ok = false;
    }
    if (robust_pi_att_r10 >= 0.0 && robust_pi_att_r10 >= robust_pi_hon_r10) {
      std::fprintf(stderr,
                   "CONTRACT VIOLATION: pdsl_robust round-10 attacker pi %.3f "
                   ">= honest pi %.3f\n",
                   robust_pi_att_r10, robust_pi_hon_r10);
      ok = false;
    }
  }

  if (pdsl_acc_25 >= 0.0) {
    pdsl::json::Object gate;
    gate["pdsl_accuracy_at_25pct"] = pdsl_acc_25;
    gate["dp_dpsgd_accuracy_at_25pct"] = dpsgd_acc_25;
    gate["pdsl_robust_pi_attacker_round10"] = robust_pi_att_r10;
    gate["pdsl_robust_pi_honest_round10"] = robust_pi_hon_r10;
    gate["passed"] = ok;
    env.set_acceptance(std::move(gate));
  }
  if (!env.write(out_path)) return 1;
  return ok ? 0 : 1;
}
