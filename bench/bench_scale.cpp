// S-SCALE fleet bench: PDSL at M in {8, 64, 256, 1024} with the full fleet
// stack on — sparse regular-4 topology (CSR, no N x N matrix), sampled
// participation (k active agents per round), lazy worker state and wire
// round-trip verification on every message. Reports ms/round, peak RSS and
// steady-state heap per fleet size: the numbers that prove cost scales with
// the *active set*, not the fleet.
//
// Sweep smallest fleet first: peak RSS is a process-wide high-water mark, so
// per-size readings are only meaningful in ascending order.
//
// Also runs one random-walk scenario (a single model walking the graph) at
// the second-largest size, and gates on the S-SCALE determinism contract:
// the largest fleet under chaos (drop + delay + churn) plus sign-flip
// Byzantine agents must be bit-identical across a rerun and across
// --threads 1 vs 4. Writes BENCH_scale.json (override with --out).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "core/experiment.hpp"
#include "io/codec.hpp"
#include "sim/faults.hpp"

namespace {

using pdsl::core::ExperimentConfig;
using pdsl::core::ExperimentResult;

ExperimentConfig base_config(const pdsl::CliArgs& args, std::size_t agents) {
  ExperimentConfig cfg;
  cfg.algorithm = args.get_string("algo", "pdsl");
  cfg.dataset = "mnist_like";
  cfg.model = "logistic";  // small model: the bench measures fleet overhead
  cfg.image = 8;
  cfg.partition = "iid";  // every agent holds >= 1 sample even at M = 1024
  cfg.agents = agents;
  cfg.rounds = static_cast<std::size_t>(args.get_int("rounds", 6));
  cfg.train_samples = static_cast<std::size_t>(args.get_int("train", 3000));
  cfg.test_samples = 200;
  cfg.validation_samples = 128;
  cfg.hp.batch = static_cast<std::size_t>(args.get_int("batch", 8));
  cfg.hp.gamma = 0.05;
  cfg.hp.alpha = 0.5;
  cfg.hp.clip = 1.0;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 32;
  cfg.sigma_mode = "none";  // scaling signal only; no DP noise in the loop
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.metrics.eval_every = 0;       // no per-round test eval
  cfg.metrics.test_subsample = 100;
  cfg.metrics.metric_agents = 8;    // O(1) metric cost regardless of M

  // The fleet stack under test.
  cfg.topology = "regular";
  cfg.fleet.sparse = true;
  cfg.fleet.degree = 4;
  cfg.fleet.lazy_state = true;
  cfg.fleet.wire_roundtrip = true;
  cfg.fleet.participation.mode = pdsl::fleet::ParticipationMode::kSampled;
  cfg.fleet.participation.active = std::min<std::size_t>(
      static_cast<std::size_t>(args.get_int("active", 8)), agents);
  return cfg;
}

double ms_per_round(double seconds, std::size_t rounds) {
  return 1e3 * seconds / static_cast<double>(rounds);
}

double mb(std::size_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

// Hex string: 64-bit hashes don't survive JSON's double representation.
std::string model_hash(const std::vector<float>& v) {
  const std::uint64_t h = pdsl::io::fnv1a_bytes(v.data(), v.size() * sizeof(float));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  const pdsl::CliArgs args(argc, argv,
                           {"agents", "rounds", "train", "batch", "active",
                            "seed", "algo", "out"});
  auto sizes = args.get_int_list("agents", {8, 64, 256, 1024});
  std::sort(sizes.begin(), sizes.end());  // ascending: see peak-RSS note above
  const std::string out_path = args.get_string("out", "BENCH_scale.json");

  pdsl::bench::BenchEnvelope env("scale", "scaling");
  {
    pdsl::json::Object c;
    c["algorithm"] = args.get_string("algo", "pdsl");
    pdsl::json::Array ms;
    for (const auto m : sizes) ms.push_back(pdsl::json::Value(m));
    c["agents"] = pdsl::json::Value(std::move(ms));
    c["rounds"] = static_cast<std::size_t>(args.get_int("rounds", 6));
    c["active"] = static_cast<std::size_t>(args.get_int("active", 8));
    c["topology"] = std::string("regular");
    c["degree"] = static_cast<std::size_t>(4);
    c["lazy_state"] = true;
    c["wire_roundtrip"] = true;
    c["seed"] = static_cast<std::size_t>(args.get_int("seed", 1));
    env.set_config(std::move(c));
  }

  std::printf("==== bench_scale: sampled-participation fleet sweep ====\n");
  std::printf("%7s %7s %12s %12s %10s %10s %12s %10s\n", "agents", "active",
              "ms/round", "workers_pk", "models", "heap_MB", "peak_rss_MB",
              "wire_MB");

  for (const auto m : sizes) {
    const auto agents = static_cast<std::size_t>(m);
    ExperimentConfig cfg = base_config(args, agents);

    pdsl::Stopwatch sw;
    const ExperimentResult res = pdsl::core::run_experiment(cfg);
    const double total = sw.elapsed_seconds();
    const double mspr = ms_per_round(total, cfg.rounds);
    const double heap_mb = mb(pdsl::bench::current_heap_bytes());
    const double rss_mb = mb(pdsl::bench::peak_rss_bytes());

    std::printf("%7zu %7zu %12.2f %12zu %10zu %10.1f %12.1f %10.2f\n", agents,
                cfg.fleet.participation.active, mspr, res.workers_peak,
                res.models_materialized, heap_mb, rss_mb, mb(res.wire_bytes));

    const std::string prefix = "n" + std::to_string(agents);
    env.add_metric_sample(prefix + ".ms_per_round", "ms", mspr);
    env.add_metric_sample(prefix + ".heap_mb", "MB", heap_mb);
    env.add_metric_sample(prefix + ".peak_rss_mb", "MB", rss_mb);

    pdsl::json::Object row;
    row["scenario"] = std::string("sampled");
    row["agents"] = agents;
    row["active"] = cfg.fleet.participation.active;
    row["ms_per_round"] = mspr;
    row["total_s"] = total;
    row["workers_peak"] = res.workers_peak;
    row["models_materialized"] = res.models_materialized;
    row["participants_final_round"] = res.participants;
    row["wire_messages"] = res.wire_messages;
    row["wire_bytes"] = res.wire_bytes;
    row["heap_mb"] = heap_mb;
    row["peak_rss_mb"] = rss_mb;
    row["model_hash"] = model_hash(res.average_model);
    env.add_run(std::move(row));
  }

  // Random-walk participation: one model walks the sparse graph. Run at the
  // second-largest size so it stays cheap even in the full sweep.
  {
    const auto agents =
        static_cast<std::size_t>(sizes.size() > 1 ? sizes[sizes.size() - 2]
                                                  : sizes.back());
    ExperimentConfig cfg = base_config(args, agents);
    cfg.fleet.participation.mode = pdsl::fleet::ParticipationMode::kWalk;
    cfg.fleet.participation.active = 0;

    pdsl::Stopwatch sw;
    const ExperimentResult res = pdsl::core::run_experiment(cfg);
    const double mspr = ms_per_round(sw.elapsed_seconds(), cfg.rounds);
    std::printf("%7zu %7s %12.2f %12zu %10zu  (random-walk)\n", agents, "walk",
                mspr, res.workers_peak, res.models_materialized);
    env.add_metric_sample("walk.ms_per_round", "ms", mspr);

    pdsl::json::Object row;
    row["scenario"] = std::string("walk");
    row["agents"] = agents;
    row["ms_per_round"] = mspr;
    row["workers_peak"] = res.workers_peak;
    row["models_materialized"] = res.models_materialized;
    row["participants_final_round"] = res.participants;
    row["model_hash"] = model_hash(res.average_model);
    env.add_run(std::move(row));
  }

  // Acceptance gate: the largest fleet under chaos (drop + delay + churn)
  // plus 10% sign-flip Byzantine agents must be bit-identical across a rerun
  // and across --threads 1 vs 4.
  bool rerun_ok = false, threads_ok = false;
  {
    ExperimentConfig cfg = base_config(args, static_cast<std::size_t>(sizes.back()));
    // 64 participants so some sampled agents are graph-adjacent and the gate
    // exercises real traffic (wire, drops, corruption), not just local steps.
    cfg.fleet.participation.active = std::min<std::size_t>(64, cfg.agents);
    cfg.faults.drop_prob = 0.05;
    cfg.faults.delay_prob = 0.10;
    cfg.faults.delay_rounds = 2;
    cfg.faults.churn_prob = 0.05;
    cfg.faults.churn_interval = 2;
    cfg.adversary.frac = 0.1;  // lowest ids sign-flip at the default x3 scale
    env.set_faults(pdsl::bench::fault_config_json(cfg));
    env.set_adversary(pdsl::sim::adversary_plan_to_json(cfg.adversary));

    const ExperimentResult a = pdsl::core::run_experiment(cfg);
    const ExperimentResult b = pdsl::core::run_experiment(cfg);
    cfg.threads = 4;
    const ExperimentResult c = pdsl::core::run_experiment(cfg);
    rerun_ok = a.average_model == b.average_model;
    threads_ok = a.average_model == c.average_model;
    std::printf("chaos+byzantine @ M=%zu: rerun %s, threads 1-vs-4 %s "
                "(model hash %s)\n",
                cfg.agents, rerun_ok ? "bit-identical" : "DIVERGED",
                threads_ok ? "bit-identical" : "DIVERGED",
                model_hash(a.average_model).c_str());

    pdsl::json::Object gate;
    gate["chaos_agents"] = cfg.agents;
    gate["rerun_bit_identical"] = rerun_ok;
    gate["threads_bit_identical"] = threads_ok;
    gate["model_hash"] = model_hash(a.average_model);
    gate["passed"] = rerun_ok && threads_ok;
    env.set_acceptance(std::move(gate));
  }

  if (!env.write(out_path)) return 1;
  if (!rerun_ok || !threads_ok) {
    std::fprintf(stderr,
                 "ERROR: chaos+byzantine fleet run is not deterministic "
                 "(rerun %d, threads %d)\n",
                 static_cast<int>(rerun_ok), static_cast<int>(threads_ok));
    return 1;
  }
  return 0;
}
