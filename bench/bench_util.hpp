#pragma once
// Shared harness for the per-figure/per-table bench binaries. Each binary
// declares which paper artifact it regenerates (dataset, topology, epsilon
// grid, agent counts); the harness sweeps the five algorithms of Sec. VI-B,
// prints the same series/rows the paper reports, and writes CSVs.
//
// Scales:
//  - "quick" (default): reduced sizes so the whole suite runs on one core in
//    minutes. Shapes (who wins, how curves order) are preserved.
//  - "paper": the paper's M in {10,15,20}, full round counts, CNN models and
//    paper image sizes. Hours of CPU; run selectively.

#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "core/experiment.hpp"

namespace pdsl::bench {

struct SweepSpec {
  std::string id;       ///< e.g. "fig1"
  std::string title;    ///< human-readable description of the paper artifact
  std::string dataset;  ///< mnist_like | cifar_like
  std::string topology; ///< full | bipartite | ring
  std::vector<double> epsilons;      ///< paper's privacy budgets for this dataset
  double gamma = 0.0;                ///< 0 = dataset default (paper Sec. VI-A)
  double alpha = 0.0;                ///< 0 = dataset default
};

struct ScaleParams {
  std::vector<std::int64_t> agents;
  std::size_t rounds = 0;
  std::size_t train_samples = 0;
  std::size_t test_samples = 0;
  std::size_t validation_samples = 0;
  std::size_t image = 0;
  std::size_t batch = 0;
  std::string model;
  std::size_t shapley_permutations = 0;
  std::size_t validation_batch = 0;
  std::size_t test_subsample = 0;
  std::size_t eval_every = 0;
  std::size_t print_every = 0;
  double noise_scale = 1.0;  ///< see ExperimentConfig::noise_scale
};

/// Resolve "quick"/"paper" into concrete sizes for a dataset.
ScaleParams scale_params(const std::string& scale, const std::string& dataset);

/// Base config for one cell of a sweep.
core::ExperimentConfig make_config(const SweepSpec& spec, const ScaleParams& sp,
                                   std::size_t agents, double epsilon, std::uint64_t seed);

/// Loss-curve sweep (the paper's Figs. 1-6): for each (M, eps), run all five
/// algorithms and print average loss vs round side by side. Returns exit code.
int run_figure_bench(int argc, const char* const* argv, const SweepSpec& spec);

/// Accuracy-table sweep (the paper's Tables I-II): the given topologies x
/// (M, eps) grid, final test accuracy per algorithm.
int run_table_bench(int argc, const char* const* argv, SweepSpec spec,
                    const std::vector<std::string>& topologies);

/// Pretty label used in printed headers ("PDSL", "DP-CGA", ...).
std::string display_name(const std::string& algo_key);

/// S-FAULT config of a run as JSON, for bench result files: the full
/// FaultPlan (with the legacy drop_prob alias folded in) so a bench number
/// can never be quoted without the fault regime it was measured under.
json::Value fault_config_json(const core::ExperimentConfig& cfg);

// ---------------------------------------------------------------------------
// S-BENCH360 canonical benchmark envelope (schema v1)
// ---------------------------------------------------------------------------
// Every bench binary writes one of these as BENCH_<id>.json so
// tools/run_benchmarks.py can aggregate, diff and report uniformly. The
// envelope carries full provenance (git rev, compiler, build type,
// PDSL_NATIVE, host core count), the run's config and fault/adversary regime,
// named metric series with median/min/max over the recorded samples, the
// per-phase timing histograms from obs::MetricsRegistry, and a free-form
// `runs` array with the bench's detailed rows. A binary records one sample
// per metric per process; the python driver re-runs the binary N times and
// merges the sample arrays, so `repeats` > 1 only ever appears in
// driver-merged files.

/// Build provenance: {"compiler", "compiler_version", "build_type",
/// "pdsl_native"} from compile definitions stamped in bench/CMakeLists.txt.
json::Value build_info_json();

/// Host identity: {"hardware_concurrency"}. Speedup-style metrics are bounded
/// by the core count, so numbers from a 1-core CI box aren't mistaken for
/// engine regressions.
json::Value host_info_json();

// S-SCALE memory accounting: first-class envelope metrics so scaling benches
// can assert "memory grows with the active set, not the fleet".

/// Peak resident set size of this process so far, in bytes (getrusage
/// ru_maxrss). Monotone: once the fleet's high-water mark is reached it never
/// decreases, so per-config deltas must be measured smallest-config-first.
std::size_t peak_rss_bytes();

/// Bytes currently allocated from the heap (glibc mallinfo2). 0 on libcs
/// without the API; unlike peak RSS this goes *down* when state is freed, so
/// before/after deltas isolate one run's steady-state footprint.
std::size_t current_heap_bytes();

/// {"peak_rss_bytes", "heap_bytes"} snapshot for the envelope's "memory"
/// block (an optional schema-v1 addition: absent in older BENCH_*.json).
json::Value memory_info_json();

/// Git revision the binary was built from (stamped at configure time;
/// the PDSL_GIT_REV environment variable overrides, which the A/B driver
/// uses when it rebuilds an older rev in a worktree).
std::string bench_git_rev();

/// Snapshot of the "phase.*" histograms in the global MetricsRegistry
/// (populated by run_with_metrics: one observation per phase per round).
json::Value phase_histograms_json();

class BenchEnvelope {
 public:
  /// `kind`: figure | table | ablation | scaling | micro | attack | calibration.
  BenchEnvelope(std::string bench_id, std::string kind);

  /// The resolved knob values the bench actually ran with.
  void set_config(json::Object cfg);
  void set_faults(json::Value faults);
  void set_adversary(json::Value adversary);
  /// Pass/fail gate values for benches that double as contracts.
  void set_acceptance(json::Object acceptance);

  /// Append one observation to the named series; median/min/max are computed
  /// over all samples at to_json() time. Units are free-form but stable
  /// ("ms", "s", "loss", "accuracy", "x", "epsilon", "bytes").
  void add_metric_sample(const std::string& name, const std::string& unit, double value);
  /// Append one detailed result row (bench-specific fields).
  void add_run(json::Object run);

  [[nodiscard]] json::Value to_json() const;
  /// dump(2) + trailing newline to `path`; prints a "wrote <path>" line.
  /// Returns false (after an error line on stderr) when the file can't be
  /// opened.
  bool write(const std::string& path) const;

 private:
  std::string bench_id_;
  std::string kind_;
  json::Object config_;
  json::Value faults_;
  json::Value adversary_;
  json::Object acceptance_;
  bool has_acceptance_ = false;
  struct MetricSeries {
    std::string unit;
    std::vector<double> samples;
  };
  std::map<std::string, MetricSeries> metrics_;  ///< sorted => stable dumps
  json::Array runs_;
};

}  // namespace pdsl::bench
