#pragma once
// Shared harness for the per-figure/per-table bench binaries. Each binary
// declares which paper artifact it regenerates (dataset, topology, epsilon
// grid, agent counts); the harness sweeps the five algorithms of Sec. VI-B,
// prints the same series/rows the paper reports, and writes CSVs.
//
// Scales:
//  - "quick" (default): reduced sizes so the whole suite runs on one core in
//    minutes. Shapes (who wins, how curves order) are preserved.
//  - "paper": the paper's M in {10,15,20}, full round counts, CNN models and
//    paper image sizes. Hours of CPU; run selectively.

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "core/experiment.hpp"

namespace pdsl::bench {

struct SweepSpec {
  std::string id;       ///< e.g. "fig1"
  std::string title;    ///< human-readable description of the paper artifact
  std::string dataset;  ///< mnist_like | cifar_like
  std::string topology; ///< full | bipartite | ring
  std::vector<double> epsilons;      ///< paper's privacy budgets for this dataset
  double gamma = 0.0;                ///< 0 = dataset default (paper Sec. VI-A)
  double alpha = 0.0;                ///< 0 = dataset default
};

struct ScaleParams {
  std::vector<std::int64_t> agents;
  std::size_t rounds = 0;
  std::size_t train_samples = 0;
  std::size_t test_samples = 0;
  std::size_t validation_samples = 0;
  std::size_t image = 0;
  std::size_t batch = 0;
  std::string model;
  std::size_t shapley_permutations = 0;
  std::size_t validation_batch = 0;
  std::size_t test_subsample = 0;
  std::size_t eval_every = 0;
  std::size_t print_every = 0;
  double noise_scale = 1.0;  ///< see ExperimentConfig::noise_scale
};

/// Resolve "quick"/"paper" into concrete sizes for a dataset.
ScaleParams scale_params(const std::string& scale, const std::string& dataset);

/// Base config for one cell of a sweep.
core::ExperimentConfig make_config(const SweepSpec& spec, const ScaleParams& sp,
                                   std::size_t agents, double epsilon, std::uint64_t seed);

/// Loss-curve sweep (the paper's Figs. 1-6): for each (M, eps), run all five
/// algorithms and print average loss vs round side by side. Returns exit code.
int run_figure_bench(int argc, const char* const* argv, const SweepSpec& spec);

/// Accuracy-table sweep (the paper's Tables I-II): the given topologies x
/// (M, eps) grid, final test accuracy per algorithm.
int run_table_bench(int argc, const char* const* argv, SweepSpec spec,
                    const std::vector<std::string>& topologies);

/// Pretty label used in printed headers ("PDSL", "DP-CGA", ...).
std::string display_name(const std::string& algo_key);

/// S-FAULT config of a run as JSON, for bench result files: the full
/// FaultPlan (with the legacy drop_prob alias folded in) so a bench number
/// can never be quoted without the fault regime it was measured under.
json::Value fault_config_json(const core::ExperimentConfig& cfg);

}  // namespace pdsl::bench
