// Extension sweep: the paper's five algorithms plus the extensions this
// library adds (ASYNC-DP-GOSSIP, DP-QGM, PDSL-uniform, non-private D-PSGD as
// the utility ceiling) on one heterogeneous DP workload, with multi-seed
// error bars.

#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/replicate.hpp"

int main(int argc, char** argv) {
  using namespace pdsl;
  const CliArgs args(argc, argv, {"scale", "rounds", "eps", "seeds", "out"});
  const std::string scale = args.get_string("scale", "quick");
  auto sp = bench::scale_params(scale, "mnist_like");
  sp.rounds =
      static_cast<std::size_t>(args.get_int("rounds", static_cast<std::int64_t>(sp.rounds)));
  const double eps = args.get_double("eps", 0.1);
  const auto seed_ints = args.get_int_list("seeds", {1, 2, 3});
  std::vector<std::uint64_t> seeds(seed_ints.begin(), seed_ints.end());

  bench::SweepSpec spec;
  spec.id = "extended_algorithms";
  spec.dataset = "mnist_like";
  spec.topology = "full";

  std::printf("==== extension: full algorithm roster (mean +- std over %zu seeds) ====\n",
              seeds.size());
  std::printf("scale=%s eps=%.3g rounds=%zu M=%lld\n\n", scale.c_str(), eps, sp.rounds,
              static_cast<long long>(sp.agents.front()));
  std::printf("%-16s %10s %12s %14s %12s\n", "algorithm", "loss", "loss_std", "accuracy",
              "acc_std");

  CsvWriter csv("bench_results/extended_algorithms.csv",
                {"algorithm", "loss_mean", "loss_std", "acc_mean", "acc_std", "acc_min",
                 "acc_max"});

  bench::BenchEnvelope env("extended_algorithms", "table");
  {
    json::Object c;
    c["dataset"] = spec.dataset;
    c["topology"] = spec.topology;
    c["agents"] = sp.agents.front();
    c["rounds"] = sp.rounds;
    c["epsilon"] = eps;
    json::Array ss;
    for (const auto s : seed_ints) ss.push_back(json::Value(s));
    c["seeds"] = json::Value(std::move(ss));
    env.set_config(std::move(c));
  }

  for (const std::string algo :
       {"dpsgd", "dp_dpsgd", "muffliato", "dp_cga", "dp_netfleet", "async_dp_gossip",
        "dp_qgm", "pdsl_uniform", "pdsl"}) {
    auto cfg = bench::make_config(spec, sp, static_cast<std::size_t>(sp.agents.front()), eps,
                                  seeds.front());
    cfg.algorithm = algo;
    if (algo == "dpsgd") cfg.sigma_mode = "none";  // non-private ceiling
    const auto rep = core::run_replicated(cfg, seeds);
    std::printf("%-16s %10.4f %12.4f %14.3f %12.3f\n", bench::display_name(algo).c_str(),
                rep.final_loss.mean, rep.final_loss.stddev, rep.final_accuracy.mean,
                rep.final_accuracy.stddev);
    csv.row(bench::display_name(algo), rep.final_loss.mean, rep.final_loss.stddev,
            rep.final_accuracy.mean, rep.final_accuracy.stddev, rep.final_accuracy.min,
            rep.final_accuracy.max);
    csv.flush();
    env.add_metric_sample(algo + ".final_accuracy_mean", "accuracy",
                          rep.final_accuracy.mean);
    env.add_metric_sample(algo + ".final_loss_mean", "loss", rep.final_loss.mean);
    json::Object run;
    run["algorithm"] = algo;
    run["loss_mean"] = rep.final_loss.mean;
    run["loss_std"] = rep.final_loss.stddev;
    run["acc_mean"] = rep.final_accuracy.mean;
    run["acc_std"] = rep.final_accuracy.stddev;
    run["acc_min"] = rep.final_accuracy.min;
    run["acc_max"] = rep.final_accuracy.max;
    env.add_run(std::move(run));
  }
  return env.write(args.get_string("out", "BENCH_extended_algorithms.json")) ? 0 : 1;
}
