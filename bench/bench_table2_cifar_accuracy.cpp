// Table II: test accuracy on the CIFAR-like dataset across
// {fully connected, bipartite, ring} x M x epsilon for all five algorithms.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  pdsl::bench::SweepSpec spec;
  spec.id = "table2";
  spec.title = "CIFAR-like test accuracy (paper Table II)";
  spec.dataset = "cifar_like";
  spec.epsilons = {0.5, 0.7, 1.0};
  return pdsl::bench::run_table_bench(argc, argv, spec, {"full", "bipartite", "ring"});
}
