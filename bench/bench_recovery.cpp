// S-RECOV overhead sweep: what does surviving an unreliable channel cost?
// Part 1 sweeps the corruption probability {0, 0.05, 0.1, 0.2} with the
// NACK/retransmit transport on and records per-round wall time, retransmit
// volume and learning outcome; part 2 sweeps the crash probability with
// snapshot+resync recovery and records crash/resync counts and the accuracy
// a recovering fleet retains.
//
// The run doubles as the PR's acceptance gate: at 10% corruption the mean
// ms/round overhead over the clean transport baseline must stay below 25%,
// and every swept run must stay finite with all crashes resynced. Exit 1 on
// violation so CI can run the bench as a contract. Gates arm only at real
// scale (agents >= 8 and rounds >= 5); smoke runs still check the
// correctness contracts. Results land in BENCH_recovery.json (--out).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "core/experiment.hpp"
#include "sim/faults.hpp"

namespace {

using pdsl::core::ExperimentConfig;
using pdsl::core::ExperimentResult;

ExperimentConfig base_config(const pdsl::CliArgs& args) {
  ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "mnist_like";
  cfg.model = "mlp";
  cfg.topology = "full";
  cfg.agents = static_cast<std::size_t>(args.get_int("agents", 8));
  cfg.rounds = static_cast<std::size_t>(args.get_int("rounds", 10));
  cfg.train_samples = static_cast<std::size_t>(args.get_int("train", 900));
  cfg.test_samples = 240;
  cfg.validation_samples = 200;
  cfg.image = 10;
  cfg.hidden = 32;
  cfg.hp.batch = 16;
  cfg.hp.gamma = 0.05;
  cfg.hp.alpha = 0.5;
  cfg.hp.shapley_permutations =
      static_cast<std::size_t>(args.get_int("mc_perms", 4));
  cfg.hp.validation_batch = 64;
  cfg.sigma_mode = "dpsgd";
  cfg.epsilon = 0.3;
  cfg.noise_scale = 0.06;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.metrics.eval_every = cfg.rounds;  // accuracy at the final round only
  cfg.metrics.test_subsample = 240;
  return cfg;
}

/// Stable metric-key label for a probability knob: 0.05 -> "5pct".
std::string pct_label(double p) {
  return std::to_string(static_cast<int>(std::lround(1e2 * p))) + "pct";
}

/// Mean wall-clock milliseconds per round over the series.
double mean_round_ms(const ExperimentResult& res) {
  if (res.series.empty()) return 0.0;
  double total = 0.0;
  for (const auto& m : res.series) total += m.round_s;
  return 1e3 * total / static_cast<double>(res.series.size());
}

}  // namespace

int main(int argc, char** argv) {
  const pdsl::CliArgs args(argc, argv,
                           {"agents", "rounds", "train", "mc_perms", "seed",
                            "corrupts", "crash_probs", "reps", "out"});
  const auto corrupts = args.get_double_list("corrupts", {0.0, 0.05, 0.1, 0.2});
  const auto crash_probs = args.get_double_list("crash_probs", {0.0, 0.1, 0.2});
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 3));
  const std::string out_path = args.get_string("out", "BENCH_recovery.json");
  ExperimentConfig base = base_config(args);
  const bool gates_armed = base.agents >= 8 && base.rounds >= 5;

  std::printf("==== bench_recovery: M=%zu, %zu rounds, %zu reps, seed %llu ====\n",
              base.agents, base.rounds, reps,
              static_cast<unsigned long long>(base.seed));

  pdsl::bench::BenchEnvelope env("recovery", "ablation");
  {
    pdsl::json::Object c;
    c["dataset"] = base.dataset;
    c["topology"] = base.topology;
    c["agents"] = base.agents;
    c["rounds"] = base.rounds;
    c["reps"] = reps;
    c["seed"] = base.seed;
    pdsl::json::Array cs;
    for (const double p : corrupts) cs.push_back(pdsl::json::Value(p));
    c["corrupt_probs"] = pdsl::json::Value(std::move(cs));
    pdsl::json::Array ks;
    for (const double p : crash_probs) ks.push_back(pdsl::json::Value(p));
    c["crash_probs"] = pdsl::json::Value(std::move(ks));
    env.set_config(std::move(c));
  }
  env.set_faults(pdsl::bench::fault_config_json(base));

  // -- Part 1: corruption/retransmit overhead sweep ------------------------
  // Two baselines: p == 0 runs with the transport entirely off (what users
  // pay by default), and the "wire" row runs the transport — per-message
  // encode/decode/checksum — with a corruption probability too small to ever
  // fire. The acceptance gate measures *retransmit* overhead against the
  // wire baseline; the wire row's own overhead vs off is reported so the
  // encoding cost stays visible too.
  constexpr double kWireBaseline = 1e-300;  // transport on, zero flips fire
  struct SweepRow {
    std::string label;
    double prob = 0.0;
  };
  std::vector<SweepRow> sweep;
  for (const double p : corrupts) {
    if (p == 0.0) sweep.push_back({"off", 0.0});
  }
  sweep.push_back({"wire", kWireBaseline});
  for (const double p : corrupts) {
    if (p > 0.0) sweep.push_back({pct_label(p), p});
  }

  std::printf("%8s | %9s %9s | %11s %11s %9s | %8s\n", "corrupt", "ms/round",
              "overhead", "retransmits", "detected", "exhausted", "acc");
  bool ok = true;
  double off_ms = -1.0;
  double wire_ms = -1.0;
  double overhead_at_10pct = -1.0;
  for (const SweepRow& r : sweep) {
    ExperimentConfig cfg = base;
    cfg.channel.corrupt_prob = r.prob;
    ExperimentResult res;
    double ms = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      res = pdsl::core::run_experiment(cfg);
      ms += mean_round_ms(res);
    }
    ms /= static_cast<double>(reps);
    if (r.label == "off") off_ms = ms;
    if (r.label == "wire") wire_ms = ms;
    // The "wire" row reports the encoding cost vs off; corrupted rows report
    // retransmit overhead vs the wire baseline.
    double overhead = 0.0;
    if (r.label == "wire" && off_ms > 0.0) {
      overhead = (ms - off_ms) / off_ms;
    } else if (r.prob > 0.0 && wire_ms > 0.0) {
      overhead = (ms - wire_ms) / wire_ms;
    }
    if (r.prob == 0.1) overhead_at_10pct = overhead;
    std::printf("%8s | %9.2f %8.1f%% | %11zu %11zu %9zu | %8.3f\n",
                r.label.c_str(), ms, 1e2 * overhead, res.retransmits,
                res.corruptions_detected, res.retry_exhausted,
                res.final_accuracy);

    if (!std::isfinite(res.final_loss)) {
      std::fprintf(stderr, "CONTRACT VIOLATION: non-finite loss at corrupt=%s\n",
                   r.label.c_str());
      ok = false;
    }
    // Exactly-one-counter transport invariant holds at any scale.
    if (res.corruptions_detected != res.retransmits + res.retry_exhausted) {
      std::fprintf(stderr,
                   "CONTRACT VIOLATION: detected %zu != retransmits %zu + "
                   "exhausted %zu at corrupt=%s\n",
                   res.corruptions_detected, res.retransmits,
                   res.retry_exhausted, r.label.c_str());
      ok = false;
    }

    env.add_metric_sample("corrupt_" + r.label + ".round_ms", "ms", ms);
    pdsl::json::Object row;
    row["sweep"] = std::string("corruption");
    row["label"] = r.label;
    row["corrupt_prob"] = r.prob == kWireBaseline ? 0.0 : r.prob;
    row["transport_active"] = r.label != "off";
    row["round_ms"] = ms;
    row["overhead"] = overhead;
    row["retransmits"] = res.retransmits;
    row["corruptions_detected"] = res.corruptions_detected;
    row["retry_exhausted"] = res.retry_exhausted;
    row["duplicates_dropped"] = res.duplicates_dropped;
    row["final_accuracy"] = res.final_accuracy;
    row["final_loss"] = res.final_loss;
    env.add_run(std::move(row));
  }

  // -- Part 2: crash/recovery sweep ----------------------------------------
  std::printf("%8s | %8s %8s %9s | %8s\n", "crash", "crashes", "resyncs",
              "snapshots", "acc");
  for (const double p : crash_probs) {
    ExperimentConfig cfg = base;
    cfg.crash.crash_prob = p;
    cfg.crash.snapshot_every = 3;
    const ExperimentResult res = pdsl::core::run_experiment(cfg);
    std::printf("%8.2f | %8zu %8zu %9s | %8.3f\n", p, res.crashes, res.resyncs,
                "-", res.final_accuracy);
    if (!std::isfinite(res.final_loss)) {
      std::fprintf(stderr, "CONTRACT VIOLATION: non-finite loss at crash=%.2f\n", p);
      ok = false;
    }
    // Full topology, no churn: every crash must come back via a resync.
    if (res.resyncs != res.crashes) {
      std::fprintf(stderr,
                   "CONTRACT VIOLATION: %zu crashes but %zu resyncs at crash=%.2f\n",
                   res.crashes, res.resyncs, p);
      ok = false;
    }
    env.add_metric_sample("crash_" + pct_label(p) + ".final_accuracy",
                          "accuracy", res.final_accuracy);
    pdsl::json::Object row;
    row["sweep"] = std::string("crash");
    row["crash_prob"] = p;
    row["snapshot_every"] = cfg.crash.snapshot_every;
    row["crashes"] = res.crashes;
    row["resyncs"] = res.resyncs;
    row["final_accuracy"] = res.final_accuracy;
    row["final_loss"] = res.final_loss;
    env.add_run(std::move(row));
  }

  // Acceptance: the retransmit machinery must be cheap — < 25% ms/round over
  // the transport-on baseline at 10% corruption (armed at real scale only;
  // wall clock at smoke scale is all constant overhead).
  if (gates_armed && overhead_at_10pct >= 0.0 && overhead_at_10pct > 0.25) {
    std::fprintf(stderr,
                 "CONTRACT VIOLATION: %.1f%% ms/round retransmit overhead at "
                 "10%% corruption (budget 25%%)\n",
                 1e2 * overhead_at_10pct);
    ok = false;
  }
  pdsl::json::Object gate;
  gate["gates_armed"] = gates_armed;
  gate["off_round_ms"] = off_ms;
  gate["wire_round_ms"] = wire_ms;
  gate["retransmit_overhead_at_10pct_corruption"] = overhead_at_10pct;
  gate["overhead_budget"] = 0.25;
  gate["passed"] = ok;
  env.set_acceptance(std::move(gate));

  if (!env.write(out_path)) return 1;
  return ok ? 0 : 1;
}
