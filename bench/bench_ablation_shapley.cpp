// Ablation A1: what does Shapley weighting buy? Compares PDSL against
// PDSL-uniform (same protocol, uniform phi_hat so gradients are averaged with
// plain W weights) and DP-DPSGD across heterogeneity levels mu.

#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace pdsl;
  const CliArgs args(argc, argv,
                     {"scale", "rounds", "eps", "mu", "seed", "agents", "out"});
  const std::string scale = args.get_string("scale", "quick");
  auto sp = bench::scale_params(scale, "mnist_like");
  sp.rounds = static_cast<std::size_t>(
      args.get_int("rounds", static_cast<std::int64_t>(sp.rounds)));
  const double eps = args.get_double("eps", 0.1);
  const auto mus = args.get_double_list("mu", {0.1, 0.25, 1.0});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto agents = static_cast<std::size_t>(args.get_int("agents", sp.agents.front()));

  std::printf("==== ablation: Shapley weighting (PDSL vs PDSL-uniform vs DP-DPSGD) ====\n");
  std::printf("scale=%s M=%zu eps=%.3g rounds=%zu\n", scale.c_str(), agents, eps, sp.rounds);

  CsvWriter csv("bench_results/ablation_shapley.csv",
                {"mu", "algorithm", "final_loss", "test_accuracy", "heterogeneity"});

  bench::SweepSpec spec;
  spec.id = "ablation_shapley";
  spec.dataset = "mnist_like";
  spec.topology = "full";

  bench::BenchEnvelope env("ablation_shapley", "ablation");
  {
    json::Object c;
    c["dataset"] = spec.dataset;
    c["topology"] = spec.topology;
    c["agents"] = agents;
    c["rounds"] = sp.rounds;
    c["epsilon"] = eps;
    c["seed"] = seed;
    env.set_config(std::move(c));
  }

  std::printf("%8s %15s %12s %12s %14s\n", "mu", "algorithm", "final_loss", "accuracy",
              "heterogeneity");
  for (const double mu : mus) {
    for (const std::string algo : {"pdsl", "pdsl_uniform", "dp_dpsgd"}) {
      auto cfg = bench::make_config(spec, sp, agents, eps, seed);
      cfg.algorithm = algo;
      cfg.mu = mu;
      env.set_faults(bench::fault_config_json(cfg));
      const auto res = core::run_experiment(cfg);
      std::printf("%8.3g %15s %12.4f %12.3f %14.3f\n", mu,
                  bench::display_name(algo).c_str(), res.final_loss, res.final_accuracy,
                  res.heterogeneity);
      csv.row(mu, bench::display_name(algo), res.final_loss, res.final_accuracy,
              res.heterogeneity);
      csv.flush();
      env.add_metric_sample("mu_sweep." + algo + ".final_accuracy", "accuracy",
                            res.final_accuracy);
      json::Object run;
      run["section"] = std::string("mu_sweep");
      run["mu"] = mu;
      run["algorithm"] = algo;
      run["final_loss"] = res.final_loss;
      run["final_accuracy"] = res.final_accuracy;
      run["heterogeneity"] = res.heterogeneity;
      env.add_run(std::move(run));
    }
  }

  // Extension: label-poisoned agents. Uniform cross-gradient averaging has no
  // defense against a neighbor training on garbage labels; the Shapley
  // characteristic function scores such contributions near zero on Q.
  std::printf("\n-- robustness to poisoned agents (mu=0.25) --\n");
  CsvWriter csv2("bench_results/ablation_shapley_poison.csv",
                 {"corrupt_agents", "algorithm", "final_loss", "test_accuracy"});
  std::printf("%10s %15s %12s %12s\n", "poisoned", "algorithm", "final_loss", "accuracy");
  for (const std::size_t bad : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    for (const std::string algo : {"pdsl", "pdsl_uniform", "dp_dpsgd"}) {
      auto cfg = bench::make_config(spec, sp, agents, eps, seed);
      cfg.algorithm = algo;
      cfg.corrupt_agents = bad;
      const auto res = core::run_experiment(cfg);
      std::printf("%10zu %15s %12.4f %12.3f\n", bad, bench::display_name(algo).c_str(),
                  res.final_loss, res.final_accuracy);
      csv2.row(bad, bench::display_name(algo), res.final_loss, res.final_accuracy);
      csv2.flush();
      env.add_metric_sample("poison." + algo + ".final_accuracy", "accuracy",
                            res.final_accuracy);
      json::Object run;
      run["section"] = std::string("poison");
      run["corrupt_agents"] = bad;
      run["algorithm"] = algo;
      run["final_loss"] = res.final_loss;
      run["final_accuracy"] = res.final_accuracy;
      env.add_run(std::move(run));
    }
  }

  // Extension: Byzantine gradient poisoning (flip + 3x amplify what is
  // sent). The paper's accuracy characteristic is blind in the first rounds
  // (flat at a random init), which is exactly when the attack bites; the
  // robust variant (loss characteristic + ReLU normalization) detects and
  // zeroes the attackers from round one.
  std::printf("\n-- robustness to Byzantine (gradient-poisoning) agents --\n");
  CsvWriter csv3("bench_results/ablation_shapley_byzantine.csv",
                 {"byzantine_agents", "algorithm", "final_loss", "test_accuracy"});
  std::printf("%10s %15s %12s %12s\n", "byzantine", "algorithm", "final_loss", "accuracy");
  for (const std::size_t bad : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    for (const std::string algo : {"pdsl", "pdsl_robust", "pdsl_uniform"}) {
      auto cfg = bench::make_config(spec, sp, agents, eps, seed);
      cfg.algorithm = algo;
      cfg.byzantine_agents = bad;
      const auto res = core::run_experiment(cfg);
      std::printf("%10zu %15s %12.4f %12.3f\n", bad, bench::display_name(algo).c_str(),
                  res.final_loss, res.final_accuracy);
      csv3.row(bad, bench::display_name(algo), res.final_loss, res.final_accuracy);
      csv3.flush();
      env.add_metric_sample("byzantine." + algo + ".final_accuracy", "accuracy",
                            res.final_accuracy);
      json::Object run;
      run["section"] = std::string("byzantine");
      run["byzantine_agents"] = bad;
      run["algorithm"] = algo;
      run["final_loss"] = res.final_loss;
      run["final_accuracy"] = res.final_accuracy;
      env.add_run(std::move(run));
    }
  }
  return env.write(args.get_string("out", "BENCH_ablation_shapley.json")) ? 0 : 1;
}
